//! Figure 9 + Table 5: key-value store request latency distributions for
//! server/client stack combinations at 15% utilization.
//!
//! Paper (TAS clients): Linux median 97 µs / 99th 177 µs / max 1319 µs;
//! IX 20 / 30 / 280; TAS 17 / 30 / 122. TAS beats Linux ~5.6× at the
//! median and both kernel-bypass designs crush Linux's tail.

use tas_apps::kv::{KvClient, KvLoad, KvServer};
use tas_bench::{make_server, scaled, section, Bufs, Kind};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Histogram, Sim, SimTime};

fn run(server: Kind, client: Kind, seed: u64) -> Histogram {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let clients = 2usize;
    // 15% of the ~1.5 mOps single-app-core capacity.
    let rate_per_client = scaled(60_000, 110_000);
    let conns_per_client = scaled(32, 128);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let app: Box<dyn App> = Box::new(KvServer::new(7));
            make_server(sim, spec, server, (1, 1), Bufs::small(), app)
        } else {
            let app: Box<dyn App> = Box::new(KvClient::new(
                server_ip,
                7,
                conns_per_client,
                100_000,
                KvLoad::OpenRate {
                    per_sec: rate_per_client,
                },
                seed + spec.index as u64,
            ));
            make_server(sim, spec, client, (2, 2), Bufs::small(), app)
        }
    };
    let topo = build_star(
        &mut sim,
        1 + clients,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(20);
    let window = scaled(SimTime::from_ms(60), SimTime::from_ms(300));
    sim.run_until(warmup);
    for &h in &topo.hosts[1..] {
        set_gate(&mut sim, h, client, warmup);
    }
    sim.run_until(warmup + window);
    let mut hist = Histogram::new();
    for &h in &topo.hosts[1..] {
        hist.merge(client_hist(&sim, h, client));
    }
    hist
}

fn set_gate(sim: &mut Sim<NetMsg>, id: AgentId, kind: Kind, t: SimTime) {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            sim.agent_mut::<tas::TasHost>(id)
                .app_as_mut::<KvClient>()
                .measure_from = t;
        }
        _ => {
            // StackHost has no app_as_mut; reach through the agent.
            sim.agent_mut::<tas_baselines::StackHost>(id)
                .app_as_mut::<KvClient>()
                .measure_from = t;
        }
    }
}

fn client_hist(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> &Histogram {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            &sim.agent::<tas::TasHost>(id).app_as::<KvClient>().latency
        }
        _ => {
            &sim.agent::<tas_baselines::StackHost>(id)
                .app_as::<KvClient>()
                .latency
        }
    }
}

fn main() {
    section(
        "Figure 9 + Table 5: KV request latency (server/client combos, 15% util)",
        "TAS clients: Linux 97/129/177/1319 us, IX 20/27/30/280, TAS 17/20/30/122 (median/90th/99th/max)",
    );
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "server/client", "median", "90th", "99th", "max", "count"
    );
    let combos: Vec<(Kind, Kind, u64)> = vec![
        (Kind::TasSockets, Kind::TasSockets, 1),
        (Kind::Ix, Kind::TasSockets, 2),
        (Kind::Linux, Kind::TasSockets, 3),
        (Kind::TasSockets, Kind::Linux, 4),
        (Kind::Linux, Kind::Linux, 5),
    ];
    let mut medians = Vec::new();
    for (s, c, seed) in combos {
        let h = run(s, c, seed);
        let us = |q: f64| h.quantile(q) as f64 / 1000.0;
        println!(
            "{:<16} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8}",
            format!("{}/{}", s.label(), c.label()),
            us(0.5),
            us(0.9),
            us(0.99),
            h.max() as f64 / 1000.0,
            h.count()
        );
        medians.push((s, us(0.5)));
    }
    println!();
    // CDF points for the figure (TAS/TAS and Linux/TAS).
    let tas = run(Kind::TasSockets, Kind::TasSockets, 1);
    let linux = run(Kind::Linux, Kind::TasSockets, 3);
    println!("CDF [latency us -> fraction]  (TAS/TAS vs Linux/TAS)");
    let pts: Vec<u64> = vec![5, 10, 15, 20, 30, 50, 75, 100, 150, 200, 400]
        .into_iter()
        .map(|u| u * 1000)
        .collect();
    for (p, f) in tas.cdf_points(&pts) {
        let lf = linux.cdf_points(&[p]).first().map(|x| x.1).unwrap_or(0.0);
        println!("  {:>6} us   TAS {f:>5.2}   Linux {lf:>5.2}", p / 1000);
    }
    println!();
    println!("paper shape: TAS median ~5.6x better than Linux; TAS max ~2.3x better than IX");
}
