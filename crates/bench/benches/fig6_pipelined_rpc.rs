//! Figure 6: pipelined RPC throughput for a single-threaded server,
//! varying message size and per-RPC application delay (250 / 1000
//! cycles), split into receive-only and transmit-only halves.
//!
//! Paper: RX small RPCs: TAS up to 4.5× Linux, line rate at 2KB for 250
//! cycles; TX small RPCs: TAS up to 12.4× Linux and 1.5× mTCP; at 1000
//! cycles the gap narrows (TAS ~2.5× Linux) regardless of size.
//!
//! The runner lives in `tas_bench::scenarios::fig6` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::fig6::{self, Dir};
use tas_bench::{scaled, section, Kind};

fn main() {
    section(
        "Figure 6: pipelined RPC throughput (single-threaded server)",
        "RX: TAS 4.5x Linux small, 40G at 2KB; TX: TAS 12.4x Linux small",
    );
    let sizes: Vec<usize> = scaled(vec![64, 512, 2048], vec![32, 64, 128, 256, 512, 1024, 2048]);
    for delay in [250u64, 1000] {
        for dir in [Dir::Rx, Dir::Tx] {
            let d = if dir == Dir::Rx { "RX" } else { "TX" };
            println!();
            println!("{d} throughput [Gbps], {delay} cycles/message:");
            println!("{:<8} {:>8} {:>8} {:>8}", "size", "TAS", "mTCP", "Linux");
            for &size in &sizes {
                let t = fig6::run(Kind::TasSockets, dir, size, delay, 1);
                let m = fig6::run(Kind::Mtcp, dir, size, delay, 2);
                let l = fig6::run(Kind::Linux, dir, size, delay, 3);
                println!("{size:<8} {t:>8.2} {m:>8.2} {l:>8.2}");
            }
        }
    }
    println!();
    println!(
        "paper shape: TAS >> Linux at small sizes; TAS ~ mTCP at TX; gaps shrink at 1000 cycles"
    );
    let path = fig6::report().write().expect("write BENCH_fig6.json");
    println!("report: {}", path.display());
}
