//! Figure 6: pipelined RPC throughput for a single-threaded server,
//! varying message size and per-RPC application delay (250 / 1000
//! cycles), split into receive-only and transmit-only halves.
//!
//! Paper: RX small RPCs: TAS up to 4.5× Linux, line rate at 2KB for 250
//! cycles; TX small RPCs: TAS up to 12.4× Linux and 1.5× mTCP; at 1000
//! cycles the gap narrows (TAS ~2.5× Linux) regardless of size.

use tas_apps::echo::{EchoServer, RpcClient, ServerMode, SinkClient};
use tas_bench::{make_server, scaled, section, Bufs, Kind};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Rx,
    Tx,
}

/// Returns server-side goodput in Gbps.
fn run(kind: Kind, dir: Dir, size: usize, delay_cycles: u64, seed: u64) -> f64 {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let clients = 4usize;
    let conns_per_client = 25u32; // 100 connections total, as the paper.
    let bufs = Bufs {
        rx: (size * 16).max(8192),
        tx: (size * 16).max(8192),
    };
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let mode = match dir {
                Dir::Rx => ServerMode::Consume,
                Dir::Tx => ServerMode::Stream { size },
            };
            let app: Box<dyn App> = Box::new(EchoServer::new(7, size, mode, delay_cycles));
            // Single-threaded server: exactly one application core. TAS
            // adds fast-path cores beside it; mTCP adds a dedicated stack
            // core (as the paper observes it must); Linux runs stack and
            // app on the single core.
            let cores = match kind {
                Kind::TasSockets | Kind::TasLowLevel => (2, 1),
                Kind::Mtcp => (1, 1), // 2 total: 1 stack + 1 app.
                _ => (1, 0),          // 1 total.
            };
            make_server(sim, spec, kind, cores, bufs, app)
        } else {
            let app: Box<dyn App> = match dir {
                Dir::Rx => {
                    let mut c = RpcClient::new(
                        server_ip,
                        7,
                        conns_per_client,
                        16,
                        size,
                        tas_apps::echo::Lifetime::Persistent,
                    );
                    c.expect_reply = false; // Stream requests at the server.
                    Box::new(c)
                }
                Dir::Tx => Box::new(SinkClient::new(server_ip, 7, conns_per_client)),
            };
            // Clients always run on TAS (never the bottleneck).
            make_server(sim, spec, Kind::TasSockets, (2, 2), bufs, app)
        }
    };
    let topo = build_star(
        &mut sim,
        1 + clients,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(20);
    let window = scaled(SimTime::from_ms(15), SimTime::from_ms(60));
    sim.run_until(warmup);
    let b0 = server_bytes(&sim, topo.hosts[0], kind, dir);
    sim.run_until(warmup + window);
    let b1 = server_bytes(&sim, topo.hosts[0], kind, dir);
    (b1 - b0) as f64 * 8.0 / window.as_secs_f64() / 1e9
}

fn server_bytes(sim: &Sim<NetMsg>, id: AgentId, kind: Kind, dir: Dir) -> u64 {
    let (bin, bout) = match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            let a = sim.agent::<tas::TasHost>(id).app_as::<EchoServer>();
            (a.bytes_in, a.bytes_out)
        }
        _ => {
            let a = sim
                .agent::<tas_baselines::StackHost>(id)
                .app_as::<EchoServer>();
            (a.bytes_in, a.bytes_out)
        }
    };
    if dir == Dir::Rx {
        bin
    } else {
        bout
    }
}

fn main() {
    section(
        "Figure 6: pipelined RPC throughput (single-threaded server)",
        "RX: TAS 4.5x Linux small, 40G at 2KB; TX: TAS 12.4x Linux small",
    );
    let sizes: Vec<usize> = scaled(vec![64, 512, 2048], vec![32, 64, 128, 256, 512, 1024, 2048]);
    for delay in [250u64, 1000] {
        for dir in [Dir::Rx, Dir::Tx] {
            let d = if dir == Dir::Rx { "RX" } else { "TX" };
            println!();
            println!("{d} throughput [Gbps], {delay} cycles/message:");
            println!("{:<8} {:>8} {:>8} {:>8}", "size", "TAS", "mTCP", "Linux");
            for &size in &sizes {
                let t = run(Kind::TasSockets, dir, size, delay, 1);
                let m = run(Kind::Mtcp, dir, size, delay, 2);
                let l = run(Kind::Linux, dir, size, delay, 3);
                println!("{size:<8} {t:>8.2} {m:>8.2} {l:>8.2}");
            }
        }
    }
    println!();
    println!(
        "paper shape: TAS >> Linux at small sizes; TAS ~ mTCP at TX; gaps shrink at 1000 cycles"
    );
}
