//! Figure 14: workload proportionality — fast-path cores and end-to-end
//! throughput as key-value load steps up and then down.
//!
//! Paper: clients added one per 10 s then removed; TAS ramps from 1 to 9
//! fast-path cores and back, tracking load without hurting throughput.
//!
//! Scale-down (documented in EXPERIMENTS.md): the simulated timeline is
//! compressed (client steps every 400 ms) and the server clock is reduced
//! so a handful of load-generator clients saturate multiple fast-path
//! cores; thresholds and the controller are the paper's (add below 0.2
//! aggregate idle cores, remove above 1.25, 1 ms monitor).
//!
//! The runner lives in `tas_bench::scenarios::fig14` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::fig14;
use tas_bench::section;

fn main() {
    section(
        "Figure 14: fast-path cores and throughput under stepped load",
        "cores ramp 1 -> ~9 -> 1 as clients come and go; throughput tracks",
    );
    let (step, sample) = fig14::canonical_params();
    let outcome = fig14::run(42, step, 5, sample);
    println!(
        "{:<10} {:>7} {:>14} {:>10}",
        "t [ms]", "cores", "kOps/s", "clients"
    );
    for row in &outcome.rows {
        println!(
            "{:<10} {:>7} {:>14.1} {:>10}",
            row.t_ms, row.cores, row.kops, row.active_clients
        );
    }
    println!();
    println!(
        "core-scaling events: {}; peak cores {}; final cores {}",
        outcome.scale_events, outcome.max_cores, outcome.final_cores
    );
    println!(
        "queue-depth recorder: {} samples; mean core utilization {:.2}",
        outcome.series_samples, outcome.mean_util
    );
    println!("paper: cores ramp 1 -> 9 -> 1 following the load staircase");
    let path = fig14::report_from(&outcome, step)
        .write()
        .expect("write BENCH_fig14.json");
    println!("report: {}", path.display());
}
