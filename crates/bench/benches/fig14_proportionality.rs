//! Figure 14: workload proportionality — fast-path cores and end-to-end
//! throughput as key-value load steps up and then down.
//!
//! Paper: clients added one per 10 s then removed; TAS ramps from 1 to 9
//! fast-path cores and back, tracking load without hurting throughput.
//!
//! Scale-down (documented in EXPERIMENTS.md): the simulated timeline is
//! compressed (client steps every 400 ms) and the server clock is reduced
//! so a handful of load-generator clients saturate multiple fast-path
//! cores; thresholds and the controller are the paper's (add below 0.2
//! aggregate idle cores, remove above 1.25, 1 ms monitor).

use tas::host::timers as tas_timers;
use tas::{ApiKind, CcAlgo, TasConfig, TasHost};
use tas_apps::kv::KvServer;
use tas_apps::loadgen::{timers as lg_timers, LoadGenConfig, LoadGenHost};
use tas_bench::{scaled, section};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

/// Builds the proportionality scenario; returns (sim, server, clients).
pub fn build(seed: u64, step: SimTime, clients: usize) -> (Sim<NetMsg>, AgentId, Vec<AgentId>) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            // Reduced clock so modest load exercises many cores.
            let cfg = TasConfig {
                freq_hz: 50_000_000,
                max_fp_cores: 10,
                initial_fp_cores: 1,
                app_cores: 10,
                api: ApiKind::Sockets,
                cc: CcAlgo::None,
                rx_buf: 4096,
                tx_buf: 4096,
                proportional: true,
                max_core_backlog: SimTime::from_ms(50),
                ..TasConfig::default()
            };
            let app: Box<dyn App> = Box::new(KvServer::new(7));
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                app,
            )))
        } else {
            let mut template = vec![0u8; tas_apps::kv::REQ_HDR + tas_apps::kv::VAL_SIZE];
            template[0] = tas_apps::kv::OP_GET;
            template[1..5].copy_from_slice(&1u32.to_be_bytes());
            let cfg = LoadGenConfig {
                server: server_ip,
                port: 7,
                conns: 80,
                think: SimTime::from_ms(1),
                req_size: template.len(),
                resp_size: tas_apps::kv::RESP_HDR + tas_apps::kv::VAL_SIZE,
                req_template: Some(template),
                // Each client stops issuing when its down-step arrives.
                stop_at: SimTime::ZERO,
                ..LoadGenConfig::default()
            };
            sim.add_agent(Box::new(LoadGenHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                spec.uplink,
                cfg,
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        1 + clients,
        |i| {
            if i == 0 {
                PortConfig::fortygig()
            } else {
                PortConfig::tengig()
            }
        },
        |i| {
            if i == 0 {
                NicConfig::server_40g(1)
            } else {
                NicConfig::client_10g(1)
            }
        },
        &mut factory,
    );
    sim.inject_timer(SimTime::ZERO, topo.hosts[0], tas_timers::INIT, 0);
    // Staggered starts; mirrored stops.
    let total = step * (2 * clients as u64 + 1);
    for (i, &h) in topo.hosts[1..].iter().enumerate() {
        let start = step * i as u64;
        let stop = total - step * (i as u64 + 1);
        sim.inject_timer(start, h, lg_timers::INIT, 0);
        sim.agent_mut::<LoadGenHost>(h).set_stop_at(stop);
    }
    (sim, topo.hosts[0], topo.hosts[1..].to_vec())
}

fn main() {
    section(
        "Figure 14: fast-path cores and throughput under stepped load",
        "cores ramp 1 -> ~9 -> 1 as clients come and go; throughput tracks",
    );
    let clients = 5usize;
    let step = scaled(SimTime::from_ms(400), SimTime::from_secs(2));
    let (mut sim, server, client_ids) = build(42, step, clients);
    let total = step * (2 * clients as u64 + 1);
    let sample = SimTime::from_ms(scaled(100, 500));
    println!(
        "{:<10} {:>7} {:>14} {:>10}",
        "t [ms]", "cores", "kOps/s", "clients"
    );
    let mut t = SimTime::ZERO;
    let mut prev_done = 0u64;
    let mut max_cores = 0usize;
    while t < total {
        t += sample;
        sim.run_until(t);
        let done: u64 = client_ids
            .iter()
            .map(|&c| sim.agent::<LoadGenHost>(c).done)
            .sum();
        let server_h = sim.agent::<TasHost>(server);
        let cores = server_h.active_fp_cores();
        max_cores = max_cores.max(cores);
        let kops = (done - prev_done) as f64 / sample.as_secs_f64() / 1e3;
        let active = client_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let start = step * *i as u64;
                let stop = total - step * (*i as u64 + 1);
                t > start && t < stop
            })
            .count();
        println!("{:<10} {cores:>7} {kops:>14.1} {active:>10}", t.as_millis(),);
        prev_done = done;
    }
    let stats = sim.agent::<TasHost>(server).host_stats();
    println!();
    println!(
        "core-scaling events: {}; peak cores {max_cores}; final cores {}",
        stats.scale_events,
        sim.agent::<TasHost>(server).active_fp_cores()
    );
    println!("paper: cores ramp 1 -> 9 -> 1 following the load staircase");
}
