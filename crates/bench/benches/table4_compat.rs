//! Table 4: compatibility between Linux and TAS.
//!
//! 100 bulk-transfer flows from one sending machine to one receiving
//! machine over a 10G link, for every sender/receiver stack combination.
//! Paper: 9.4 Gbps line rate in all four cells.

use tas::{CcAlgo, TasConfig, TasHost};
use tas_apps::bulk::{BulkReceiver, BulkSender};
use tas_baselines::{profiles, StackHost, StackHostConfig};
use tas_bench::{scaled, section, Kind};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

fn goodput_gbps(sender: Kind, receiver: Kind, seed: u64) -> f64 {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let recv_ip = host_ip(0);
    let flows = scaled(50, 100);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let is_recv = spec.index == 0;
        let kind = if is_recv { receiver } else { sender };
        let app: Box<dyn App> = if is_recv {
            Box::new(BulkReceiver::new(9))
        } else {
            Box::new(BulkSender::new(recv_ip, 9, flows))
        };
        // Both stacks run DCTCP, as the paper's testbed does.
        match kind {
            Kind::TasSockets | Kind::TasLowLevel => {
                let mut cfg = TasConfig::rpc_bench(2, 2);
                cfg.rx_buf = 256 * 1024;
                cfg.tx_buf = 256 * 1024;
                cfg.cc = CcAlgo::DctcpRate;
                cfg.initial_rate_bps = 500_000_000;
                cfg.control_interval = SimTime::from_us(200);
                cfg.max_core_backlog = SimTime::from_ms(50);
                sim.add_agent(Box::new(TasHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
            _ => {
                let mut cfg = StackHostConfig::linux(4);
                cfg.tcp.recv_buf = 256 * 1024;
                cfg.tcp.send_buf = 256 * 1024;
                cfg.max_core_backlog = SimTime::from_ms(50);
                sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profiles::linux(),
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(20);
    let window = scaled(SimTime::from_ms(30), SimTime::from_ms(100));
    sim.run_until(warmup);
    let b0 = receiver_bytes(&sim, topo.hosts[0], receiver);
    sim.run_until(warmup + window);
    let b1 = receiver_bytes(&sim, topo.hosts[0], receiver);
    (b1 - b0) as f64 * 8.0 / window.as_secs_f64()
}

fn receiver_bytes(sim: &Sim<NetMsg>, id: AgentId, kind: Kind) -> u64 {
    match kind {
        Kind::TasSockets | Kind::TasLowLevel => {
            sim.agent::<tas::TasHost>(id).app_as::<BulkReceiver>().total
        }
        _ => {
            sim.agent::<tas_baselines::StackHost>(id)
                .app_as::<BulkReceiver>()
                .total
        }
    }
}

fn main() {
    section(
        "Table 4: Linux/TAS sender-receiver compatibility (bulk, 10G)",
        "9.4 Gbps goodput in all four combinations",
    );
    println!("{:<22} {:>12}", "sender -> receiver", "goodput Gbps");
    let mut all_ok = true;
    let mut rep =
        tas_bench::report::Report::new("table4", "Linux/TAS sender-receiver compatibility", 1);
    rep.param("flows", scaled(50, 100));
    for (s, r, seed) in [
        (Kind::Linux, Kind::Linux, 1u64),
        (Kind::Linux, Kind::TasSockets, 2),
        (Kind::TasSockets, Kind::Linux, 3),
        (Kind::TasSockets, Kind::TasSockets, 4),
    ] {
        let g = goodput_gbps(s, r, seed);
        println!(
            "{:<22} {:>12.2}",
            format!("{} -> {}", s.label(), r.label()),
            g / 1e9
        );
        // Payload goodput on a 10G wire with TCP/IP/Ethernet overhead
        // tops out around 9.4 Gbps.
        if g < 8.5e9 {
            all_ok = false;
        }
        let sn = if s == Kind::Linux { "linux" } else { "tas" };
        let rn = if r == Kind::Linux { "linux" } else { "tas" };
        rep.push(tas_bench::report::Metric::value(
            &format!("{sn}_to_{rn}"),
            "gbps",
            g / 1e9,
        ));
    }
    let path = rep.write().expect("write BENCH_table4.json");
    println!("report: {}", path.display());
    println!();
    println!(
        "{}",
        if all_ok {
            "all combinations achieve line rate (paper: 9.4 Gbps each)"
        } else {
            "WARNING: some combination fell short of line rate"
        }
    );
}
