//! Table 4: compatibility between Linux and TAS.
//!
//! 100 bulk-transfer flows from one sending machine to one receiving
//! machine over a 10G link, for every sender/receiver stack combination.
//! Paper: 9.4 Gbps line rate in all four cells.
//!
//! The runner lives in `tas_bench::scenarios::table4` (it is on the CI
//! regression gate); this harness prints the human-readable table and
//! writes the same report the gate pins.

use tas_bench::scenarios::table4;
use tas_bench::section;

fn main() {
    section(
        "Table 4: Linux/TAS sender-receiver compatibility (bulk, 10G)",
        "9.4 Gbps goodput in all four combinations",
    );
    println!("{:<22} {:>12}", "sender -> receiver", "goodput Gbps");
    let mut all_ok = true;
    for (sn, s, rn, r, seed) in table4::cells() {
        let g = table4::goodput_gbps(s, r, seed);
        println!("{:<22} {:>12.2}", format!("{sn} -> {rn}"), g / 1e9);
        // Payload goodput on a 10G wire with TCP/IP/Ethernet overhead
        // tops out around 9.4 Gbps.
        if g < 8.5e9 {
            all_ok = false;
        }
    }
    let path = table4::report().write().expect("write BENCH_table4.json");
    println!("report: {}", path.display());
    println!();
    println!(
        "{}",
        if all_ok {
            "all combinations achieve line rate (paper: 9.4 Gbps each)"
        } else {
            "WARNING: some combination fell short of line rate"
        }
    );
}
