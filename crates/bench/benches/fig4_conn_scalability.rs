//! Figure 4: connection scalability for the RPC echo benchmark on a
//! 20-core server.
//!
//! Paper: with 1k connections TAS ≈ 5.1× Linux and 0.95× IX; past
//! saturation Linux degrades up to 40% and IX up to 60% with rising
//! connection counts, while TAS degrades ≤7% (minimal fast-path state).
//!
//! The runner lives in `tas_bench::scenarios::fig4` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::fig4;
use tas_bench::{fmt_mops, full_scale, section, Kind};

fn main() {
    section(
        "Figure 4: RPC echo throughput vs. connections (20-core server)",
        "TAS ~flat (-7% at 96k); IX peaks then -60%; Linux low and -40%",
    );
    let conn_counts: Vec<u32> = if full_scale() {
        vec![1_000, 16_000, 32_000, 48_000, 64_000, 80_000, 96_000]
    } else {
        vec![1_000, 16_000, 48_000, 96_000]
    };
    println!(
        "{:<8}{}",
        "conns",
        ["TAS", "IX", "Linux"].map(|s| format!("{s:>10}")).join("")
    );
    let mut peak = [0f64; 3];
    let mut last = [0f64; 3];
    for &conns in &conn_counts {
        let mut row = format!("{conns:<8}");
        for (i, kind) in [Kind::TasSockets, Kind::Ix, Kind::Linux]
            .into_iter()
            .enumerate()
        {
            let mops = fig4::measure(kind, conns);
            row += &format!("{:>10}", fmt_mops(mops));
            peak[i] = peak[i].max(mops);
            last[i] = mops;
        }
        println!("{row}");
    }
    println!();
    for (i, name) in ["TAS", "IX", "Linux"].iter().enumerate() {
        let degradation = 100.0 * (1.0 - last[i] / peak[i]);
        println!(
            "{name}: peak {} mOps, at max conns {} mOps ({degradation:.0}% degradation)",
            fmt_mops(peak[i]),
            fmt_mops(last[i]),
        );
    }
    println!("paper: TAS degrades ~7%, IX up to 60%, Linux ~40%");
    let path = fig4::report().write().expect("write BENCH_fig4.json");
    println!("report: {}", path.display());
}
