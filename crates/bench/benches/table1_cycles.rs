//! Table 1: CPU cycles per request by network stack module.
//!
//! Paper setup: key-value store on 8 server cores, 32K connections, small
//! requests. Reported: kilocycles per request for Driver / IP / TCP /
//! Sockets / Other / App, per stack.
//!
//! Paper values (kc): Linux 0.73/1.53/3.92/8.00/1.50/1.07 = 16.75;
//! IX 0.05/0.12/1.05/0.76/0/0.76 = 2.73; TAS 0.09/0/0.81/0.62/0/0.68 = 2.57.
//!
//! The runner lives in `tas_bench::scenarios::table1` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::table1;
use tas_bench::{scaled, section, Kind};
use tas_cpusim::Module;

fn main() {
    section(
        "Table 1: cycles per request by module (KV store)",
        "Linux 16.75 kc, IX 2.73 kc, TAS 2.57 kc per request",
    );
    let conns = scaled(2_000, 32_000);
    println!("(connections: {conns}, 8 server cores)");
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>12} {:>8} {:>8} {:>8}",
        "Stack", "Driver", "IP", "TCP", "Sockets/API", "Other", "App", "Total"
    );
    for kind in [Kind::Linux, Kind::Ix, Kind::TasSockets] {
        let r = table1::measure(kind);
        let p = &r.per_request;
        let kc = |m: Module| p.cycles[m as usize] / 1000.0;
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>12.2} {:>8.2} {:>8.2} {:>8.2}",
            kind.label(),
            kc(Module::Driver),
            kc(Module::Ip),
            kc(Module::Tcp),
            kc(Module::Api),
            kc(Module::Other),
            kc(Module::App),
            p.total_cycles() / 1000.0,
        );
        assert!(
            p.requests > 100,
            "{}: too few requests measured",
            kind.label()
        );
    }
    println!();
    println!("paper reference (kc/request):");
    println!("Linux       0.73     1.53     3.92         8.00     1.50     1.07    16.75");
    println!("IX          0.05     0.12     1.05         0.76     0.00     0.76     2.73");
    println!("TAS         0.09     0.00     0.81         0.62     0.00     0.68     2.57");
    let path = table1::report().write().expect("write BENCH_table1.json");
    println!("report: {}", path.display());
}
