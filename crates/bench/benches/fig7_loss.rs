//! Figure 7: throughput penalty under induced packet loss (0.1%–5%),
//! for Linux (full SACK-style out-of-order buffering), TAS (single
//! out-of-order interval), and TAS simple recovery (go-back-N).
//!
//! Paper: TAS loses ≤1.5% up to 1% loss and 13% at 5%; roughly 2× the
//! Linux penalty; without the out-of-order interval the penalty roughly
//! triples.
//!
//! The runner lives in `tas_bench::scenarios::fig7` so this harness and
//! the `bench-report` regression gate measure the exact same scenario.

use tas_bench::scenarios::fig7::{self, Stack};
use tas_bench::{scaled, section};

fn main() {
    section(
        "Figure 7: throughput penalty vs. packet loss rate (100 bulk flows)",
        "TAS <=1.5% penalty to 1% loss, 13% at 5%; ~2x Linux; go-back-N ~3x worse",
    );
    let rates = scaled(
        vec![0.001, 0.01, 0.05],
        vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05],
    );
    println!(
        "{:<10} {:>10} {:>10} {:>14}",
        "loss", "Linux %", "TAS %", "TAS simple %"
    );
    // Baselines without loss, same seeds as the loss runs.
    let base_linux = fig7::goodput(Stack::Linux, 0.0, 100);
    let base_tas = fig7::goodput(Stack::Tas { ooo: true }, 0.0, 101);
    let base_simple = fig7::goodput(Stack::Tas { ooo: false }, 0.0, 102);
    let mut last = (0.0, 0.0, 0.0);
    for &loss in &rates {
        let p = |base: f64, g: f64| 100.0 * (1.0 - g / base).max(0.0);
        let l = p(base_linux, fig7::goodput(Stack::Linux, loss, 100));
        let t = p(base_tas, fig7::goodput(Stack::Tas { ooo: true }, loss, 101));
        let s = p(base_simple, fig7::goodput(Stack::Tas { ooo: false }, loss, 102));
        println!(
            "{:<10} {l:>10.1} {t:>10.1} {s:>14.1}",
            format!("{:.1}%", loss * 100.0)
        );
        last = (l, t, s);
    }
    println!();
    let (l, t, s) = last;
    println!(
        "at max loss: Linux {l:.1}%, TAS {t:.1}%, TAS-simple {s:.1}% (paper order: Linux < TAS < simple)"
    );
    let path = fig7::report().write().expect("write BENCH_fig7.json");
    println!("report: {}", path.display());
}
