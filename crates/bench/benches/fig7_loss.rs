//! Figure 7: throughput penalty under induced packet loss (0.1%–5%),
//! for Linux (full SACK-style out-of-order buffering), TAS (single
//! out-of-order interval), and TAS simple recovery (go-back-N).
//!
//! Paper: TAS loses ≤1.5% up to 1% loss and 13% at 5%; roughly 2× the
//! Linux penalty; without the out-of-order interval the penalty roughly
//! triples.

use tas::{CcAlgo, TasConfig, TasHost};
use tas_apps::bulk::{BulkReceiver, BulkSender};
use tas_baselines::{profiles, StackHost, StackHostConfig};
use tas_bench::{scaled, section};
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{FaultSpec, NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

#[derive(Clone, Copy, PartialEq)]
enum Stack {
    Linux,
    Tas { ooo: bool },
}

/// Returns receiver goodput in bits/s with the given loss rate applied to
/// both directions of the link.
fn goodput(stack: Stack, loss: f64, seed: u64) -> f64 {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let recv_ip = host_ip(0);
    let flows = 100; // The paper's flow count (loss dynamics depend on it).
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let is_recv = spec.index == 0;
        match stack {
            Stack::Tas { ooo } => {
                let mut cfg = TasConfig::rpc_bench(2, 2);
                cfg.rx_buf = 128 * 1024;
                cfg.tx_buf = 128 * 1024;
                cfg.ooo_rx = ooo;
                cfg.cc = CcAlgo::DctcpRate; // The paper's testbed runs DCTCP.
                cfg.initial_rate_bps = 500_000_000;
                cfg.control_interval = SimTime::from_us(200);
                cfg.max_core_backlog = SimTime::from_ms(50);
                let app: Box<dyn App> = if is_recv {
                    Box::new(BulkReceiver::new(9))
                } else {
                    Box::new(BulkSender::new(recv_ip, 9, flows))
                };
                sim.add_agent(Box::new(TasHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
            Stack::Linux => {
                let mut cfg = StackHostConfig::linux(4);
                cfg.tcp.recv_buf = 128 * 1024;
                cfg.tcp.send_buf = 128 * 1024;
                cfg.tcp.rto_min = SimTime::from_ms(2);
                cfg.max_core_backlog = SimTime::from_ms(50);
                let app: Box<dyn App> = if is_recv {
                    Box::new(BulkReceiver::new(9))
                } else {
                    Box::new(BulkSender::new(recv_ip, 9, flows))
                };
                sim.add_agent(Box::new(StackHost::new(
                    spec.ip,
                    spec.mac,
                    spec.nic,
                    profiles::linux(),
                    cfg,
                    spec.uplink,
                    app,
                )))
            }
        }
    };
    let mut port = PortConfig::tengig();
    if loss > 0.0 {
        // Seeded uniform drops via the fault injector (the `loss` field
        // survives as a compat shim; the injector is the mechanism).
        port.fault = FaultSpec::uniform_loss(loss, seed);
    }
    let topo = build_star(
        &mut sim,
        2,
        move |_| port,
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, 0, 0);
    }
    let warmup = SimTime::from_ms(50);
    let window = scaled(SimTime::from_ms(100), SimTime::from_ms(300));
    sim.run_until(warmup);
    let b0 = bytes(&sim, topo.hosts[0], stack);
    sim.run_until(warmup + window);
    let b1 = bytes(&sim, topo.hosts[0], stack);
    (b1 - b0) as f64 * 8.0 / window.as_secs_f64()
}

fn bytes(sim: &Sim<NetMsg>, id: AgentId, stack: Stack) -> u64 {
    match stack {
        Stack::Tas { .. } => sim.agent::<TasHost>(id).app_as::<BulkReceiver>().total,
        Stack::Linux => sim.agent::<StackHost>(id).app_as::<BulkReceiver>().total,
    }
}

fn main() {
    section(
        "Figure 7: throughput penalty vs. packet loss rate (100 bulk flows)",
        "TAS <=1.5% penalty to 1% loss, 13% at 5%; ~2x Linux; go-back-N ~3x worse",
    );
    let rates = scaled(
        vec![0.001, 0.01, 0.05],
        vec![0.001, 0.002, 0.005, 0.01, 0.02, 0.05],
    );
    println!(
        "{:<10} {:>10} {:>10} {:>14}",
        "loss", "Linux %", "TAS %", "TAS simple %"
    );
    // Baselines without loss, same seeds as the loss runs.
    let base_linux = goodput(Stack::Linux, 0.0, 100);
    let base_tas = goodput(Stack::Tas { ooo: true }, 0.0, 101);
    let base_simple = goodput(Stack::Tas { ooo: false }, 0.0, 102);
    let mut last = (0.0, 0.0, 0.0);
    for &loss in &rates {
        let p = |base: f64, g: f64| 100.0 * (1.0 - g / base).max(0.0);
        let l = p(base_linux, goodput(Stack::Linux, loss, 100));
        let t = p(base_tas, goodput(Stack::Tas { ooo: true }, loss, 101));
        let s = p(base_simple, goodput(Stack::Tas { ooo: false }, loss, 102));
        println!(
            "{:<10} {l:>10.1} {t:>10.1} {s:>14.1}",
            format!("{:.1}%", loss * 100.0)
        );
        last = (l, t, s);
    }
    println!();
    let (l, t, s) = last;
    println!(
        "at max loss: Linux {l:.1}%, TAS {t:.1}%, TAS-simple {s:.1}% (paper order: Linux < TAS < simple)"
    );
}
