//! Acceptance check for the span profiler on the canonical fig6 run: the
//! critical-path decomposition must sum to the measured end-to-end
//! latency within 1%, split each stage into queue + processing exactly,
//! and see zero truncation at the default ring size.
#![cfg(feature = "trace")]

use tas_bench::scenarios::fig6;
use tas_telemetry::spans;

#[test]
fn critical_path_sums_to_measured_e2e() {
    let a = fig6::span_analysis(1 << 20);
    let b = &a.breakdown;
    assert!(b.complete > 100, "expected a real span population: {b:?}");
    assert_eq!(b.truncated, 0, "default ring must not truncate: {b:?}");
    assert_eq!(b.e2e.count() as usize, b.complete);
    for q in [0.5, 0.9, 0.99] {
        let cp = spans::critical_path(&a.spans, q).expect("complete spans exist");
        let sum: u64 = cp.stages.iter().map(|d| d.delta_ns).sum();
        let err = sum.abs_diff(cp.e2e_ns) as f64;
        assert!(
            err <= 0.01 * cp.e2e_ns as f64,
            "q={q}: stage sum {sum} vs e2e {} off by more than 1%",
            cp.e2e_ns
        );
        for d in &cp.stages {
            assert_eq!(
                d.queue_ns + d.proc_ns,
                d.delta_ns,
                "queue/proc must partition the {:?} delta",
                d.stage
            );
        }
    }
}
