//! The CI regression gate end to end against the committed baselines:
//! every baseline parses, schema-validates, and passes a self-compare;
//! an injected 20% p99 latency regression trips the gate.

use tas_bench::report::{self, MetricData, Report};

#[test]
fn committed_baselines_validate_and_self_compare_clean() {
    let dir = report::baselines_dir();
    let mut n = 0;
    for entry in std::fs::read_dir(&dir).expect("baselines dir exists") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        report::validate(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let rep = Report::from_json(&text).unwrap();
        assert_eq!(
            rep.to_json(),
            text,
            "{}: baseline must round-trip byte-identically",
            path.display()
        );
        assert!(
            report::compare(&rep, &rep).is_empty(),
            "{}: self-compare must be clean",
            path.display()
        );
        n += 1;
    }
    assert!(n >= 8, "expected at least 8 committed baselines, found {n}");
}

#[test]
fn injected_p99_regression_trips_the_gate() {
    let path = report::baselines_dir().join("BENCH_fig9.json");
    let text = std::fs::read_to_string(&path).expect("committed fig9 baseline");
    let baseline = Report::from_json(&text).unwrap();
    let mut current = baseline.clone();
    let mut bumped = 0;
    for m in &mut current.metrics {
        if let MetricData::Quantiles(q) = &mut m.data {
            q.p99 += q.p99 / 5 + 1; // +20%
            bumped += 1;
        }
    }
    assert!(bumped > 0, "fig9 baseline must contain latency quantiles");
    let regs = report::compare(&current, &baseline);
    assert!(
        regs.iter().any(|r| r.field == "p99"),
        "a 20% p99 bump must trip the gate, got: {regs:?}"
    );
}
