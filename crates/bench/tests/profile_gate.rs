//! Acceptance checks for the attribution profiler (profile builds):
//! every cycle a server core burns inside the measurement window must
//! land in the profile tree (exact conservation, both stacks), the
//! folded export must be byte-deterministic for a fixed seed, and
//! capturing a profile must not perturb the simulation it observes.
#![cfg(feature = "profile")]

use tas_bench::{run_rpc, Kind, RpcScenario};
use tas_sim::SimTime;

/// A scenario small enough for debug-build test time but busy enough
/// that every core group (fast path, slow path, app) burns cycles.
fn small(kind: Kind) -> RpcScenario {
    let mut sc = RpcScenario::kv(kind, (2, 2), 256);
    sc.warmup = SimTime::from_ms(5);
    sc.measure = SimTime::from_ms(5);
    sc.profile = true;
    sc
}

#[test]
fn profile_conserves_busy_cycles_on_both_stacks() {
    for kind in [Kind::TasSockets, Kind::Linux] {
        let r = run_rpc(&small(kind));
        let cap = r.profile.expect("profile was requested");
        assert!(cap.requests > 0, "{kind:?}: no requests measured");
        assert!(cap.packets > 0, "{kind:?}: no packets measured");
        let totals = cap.profile.per_core_totals();
        for (label, busy) in &cap.busy {
            let attributed = totals.get(label).copied().unwrap_or(0);
            assert_eq!(
                attributed, *busy,
                "{kind:?} {label}: attributed cycles must equal the core's busy delta"
            );
        }
        assert_eq!(
            cap.profile.total_cycles(),
            cap.busy_total(),
            "{kind:?}: whole-tree total must equal the summed busy deltas"
        );
    }
}

#[test]
fn folded_export_is_byte_identical_for_a_fixed_seed() {
    for kind in [Kind::TasSockets, Kind::Linux] {
        let a = run_rpc(&small(kind)).profile.expect("first capture");
        let b = run_rpc(&small(kind)).profile.expect("second capture");
        assert_eq!(
            a.profile.folded(),
            b.profile.folded(),
            "{kind:?}: same-seed folded exports must be byte-identical"
        );
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.core_util, b.core_util);
    }
}

#[test]
fn capturing_a_profile_does_not_perturb_the_run() {
    for kind in [Kind::TasSockets, Kind::Linux] {
        let mut off = small(kind);
        off.profile = false;
        let plain = run_rpc(&off);
        let profiled = run_rpc(&small(kind));
        assert!(plain.profile.is_none());
        assert_eq!(
            plain.mops, profiled.mops,
            "{kind:?}: profiling must not change throughput"
        );
        assert_eq!(plain.latency.count(), profiled.latency.count());
        assert_eq!(plain.latency.quantile(0.99), profiled.latency.quantile(0.99));
        assert_eq!(plain.established, profiled.established);
        assert_eq!(plain.drops, profiled.drops);
    }
}
