//! The isolation gate self-test, in the spirit of `regression_gate.rs`:
//! the gate must be demonstrably *trippable* — a deliberately unfair
//! server configuration (fast-path rate enforcement disabled) must fail
//! the per-tenant p99 bound on the incast scenario, while the canonical
//! configuration passes the very same spec. Without the trip direction a
//! bound that is accidentally vacuous (e.g. infinite) would pass CI
//! forever.

use tas_bench::scenario::{generators, isolation, ScenarioSpec};
use tas_bench::{Kind, TasOverrides};
use tas_sim::SimTime;

/// The incast spec with a shortened measurement window: debug-mode test
/// builds run the auditors, so the full window would dominate tier-1
/// test time. The 3x-plus tail blowup of the unfair config is visible
/// well inside 12 ms (the aggressors arrive at 5 ms).
fn short_incast() -> ScenarioSpec {
    let mut spec = generators::incast_ecn();
    spec.measure = SimTime::from_ms(12);
    spec
}

#[test]
fn clean_config_passes_the_incast_isolation_bound() {
    let spec = short_incast();
    let verdicts = isolation::evaluate(&spec, Kind::TasSockets);
    assert!(!verdicts.is_empty(), "incast has a victim tenant");
    for v in &verdicts {
        assert!(
            v.pass,
            "canonical config must satisfy the bound: {}",
            v.render()
        );
        assert!(v.base_ops > 0, "victim made progress in the baseline");
        assert!(v.cont_p99_ns > 0, "victim latency was measured");
    }
}

#[test]
fn unfair_config_trips_the_incast_isolation_bound() {
    let spec = short_incast();
    let verdicts = isolation::evaluate_with(&spec, Kind::TasSockets, isolation::unfair_overrides());
    assert!(!verdicts.is_empty());
    assert!(
        verdicts.iter().any(|v| !v.pass),
        "disabling fast-path rate enforcement must blow the victim's p99 \
         bound under incast, got: {:?}",
        verdicts.iter().map(|v| v.render()).collect::<Vec<_>>()
    );
    // And specifically via the latency ratio, not a goodput artifact:
    // the victim is open-loop, so the damage shows up in its tail.
    assert!(
        verdicts
            .iter()
            .any(|v| v.p99_ratio > v.bounds.p99_ratio_max),
        "the p99 ratio is the tripped bound"
    );
}

#[test]
fn baseline_spec_strips_aggressors_only() {
    let spec = generators::churn_storm();
    let base = isolation::baseline_spec(&spec);
    assert_eq!(base.tenants.len(), 1, "only the victim remains");
    assert_eq!(base.tenants[0].name, "victim");
    // Ids, seed, and windows are untouched so runs stay comparable.
    assert_eq!(base.tenants[0].id, spec.tenants[0].id);
    assert_eq!(base.seed, spec.seed);
    assert_eq!(base.measure, spec.measure);
}

#[test]
fn unfair_overrides_only_touch_congestion_control() {
    let ov = isolation::unfair_overrides();
    let clean = TasOverrides::default();
    assert!(ov.cc.is_some());
    assert_eq!(ov.cache_lines_per_req, clean.cache_lines_per_req);
    assert_eq!(ov.stall_intervals_for_rexmit, clean.stall_intervals_for_rexmit);
    assert_eq!(ov.control_interval, clean.control_interval);
}

/// Acceptance for the design-space models: both new stacks run the
/// entire multi-tenant suite end to end — every scenario produces a
/// verdict for every victim with measured latency and progress, and no
/// run panics. (Whether a given scenario *passes* its reference bound
/// is a property of the pinned suite report, not of this smoke gate.)
#[test]
fn design_space_stacks_run_the_suite() {
    for kind in [Kind::Mpk, Kind::Pno] {
        for mut spec in tas_bench::scenario::suite() {
            // Debug builds arm the auditors; cap the windows so the
            // whole suite stays inside tier-1 test time.
            spec.measure = spec.measure.min(SimTime::from_ms(10));
            let verdicts = isolation::evaluate(&spec, kind);
            assert!(
                !verdicts.is_empty(),
                "{}: {spec:?} has a victim tenant",
                kind.label()
            );
            for v in &verdicts {
                assert!(
                    v.base_ops > 0,
                    "{} victim made no progress on {}: {}",
                    kind.label(),
                    v.scenario,
                    v.render()
                );
                assert!(
                    v.cont_p99_ns > 0,
                    "{} victim latency unmeasured on {}: {}",
                    kind.label(),
                    v.scenario,
                    v.render()
                );
                assert!(v.p99_ratio.is_finite(), "{}", v.render());
            }
        }
    }
}
