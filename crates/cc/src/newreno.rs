//! TCP NewReno: classic loss-based AIMD (RFC 6582 flavor).

use crate::{AckInfo, CcState, CongCtrl, RateFeedback, INIT_WINDOW_SEGS};

/// Window-based NewReno. ECN echoes are treated like loss (RFC 3168
/// §6.1.2): one halving per echo, same as a fast retransmit.
#[derive(Debug)]
pub struct NewReno {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    /// Bytes acked since the last congestion-avoidance increment.
    acked_accum: u32,
}

impl NewReno {
    pub fn new(mss: u32) -> Self {
        NewReno {
            mss,
            cwnd: INIT_WINDOW_SEGS * mss,
            ssthresh: u32::MAX,
            acked_accum: 0,
        }
    }

    fn halve(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
    }
}

impl CongCtrl for NewReno {
    fn on_ack(&mut self, info: AckInfo) {
        if info.ece {
            self.halve();
            return;
        }
        if self.cwnd < self.ssthresh {
            // Slow start: cwnd += min(acked, MSS) per ACK.
            self.cwnd = self.cwnd.saturating_add(info.acked.min(self.mss));
        } else {
            // Congestion avoidance: one MSS per window's worth of ACKs.
            self.acked_accum += info.acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
    }

    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_fast_retransmit(&mut self) {
        self.halve();
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn rate_iteration(
        &self,
        _st: &mut CcState,
        _fb: RateFeedback,
        current_bps: u64,
        _interval_secs: f64,
    ) -> u64 {
        // NewReno has no rate mode: the slow path's per-flow pacing rate
        // stays wherever policy set it (the historical CcAlgo::None arm,
        // which also left the fast-path counters untouched — the caller
        // owns that choice, not the algorithm).
        current_bps
    }

    fn name(&self) -> &'static str {
        "newreno"
    }
}
