//! DCTCP (Alizadeh et al., SIGCOMM 2010): ECN-mark-fraction-proportional
//! backoff, in both window mode (per-connection) and rate mode (TAS slow
//! path, paper §3.2 "DCTCP-style rate control").

use tas_sim::SimTime;

use crate::{AckInfo, CcState, CongCtrl, RateFeedback, INIT_WINDOW_SEGS};

/// Tuning knobs for DCTCP rate mode.
#[derive(Clone, Copy, Debug)]
pub struct DctcpRateParams {
    /// EWMA gain g for the alpha estimate.
    pub gain: f64,
    /// Additive increase per control interval, bits/sec.
    pub ai_bps: u64,
    /// Rate floor, bits/sec.
    pub min_bps: u64,
    /// Rate ceiling, bits/sec.
    pub max_bps: u64,
    /// Cap: rate may not exceed measured achieved rate times this.
    pub cap_factor: f64,
}

impl Default for DctcpRateParams {
    fn default() -> Self {
        DctcpRateParams {
            gain: 1.0 / 16.0,
            ai_bps: 10_000_000,
            min_bps: 1_000_000,
            max_bps: 10_000_000_000,
            cap_factor: 1.2,
        }
    }
}

/// DCTCP with per-RTT mark-fraction estimation (window mode) and the
/// slow-path control-interval law (rate mode).
#[derive(Debug)]
pub struct Dctcp {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    acked_accum: u32,
    /// EWMA of the fraction of marked bytes.
    alpha: f64,
    /// EWMA gain g.
    gain: f64,
    /// Bytes acked in the current observation window.
    bytes_acked_win: u64,
    /// Of those, bytes whose ACKs carried ECE.
    bytes_marked_win: u64,
    /// End of the current observation window (~1 RTT).
    window_end: Option<SimTime>,
    /// Whether we already reduced cwnd in this window.
    reduced_this_window: bool,
    /// Rate-mode parameters.
    rate: DctcpRateParams,
}

impl Dctcp {
    pub fn new(mss: u32) -> Self {
        Dctcp {
            mss,
            cwnd: INIT_WINDOW_SEGS * mss,
            ssthresh: u32::MAX,
            acked_accum: 0,
            // Start at 1.0: react strongly to early marks (standard).
            alpha: 1.0,
            gain: 1.0 / 16.0,
            bytes_acked_win: 0,
            bytes_marked_win: 0,
            window_end: None,
            reduced_this_window: false,
            rate: DctcpRateParams::default(),
        }
    }

    /// Creates a window-mode DCTCP with custom rate-mode parameters.
    pub fn with_rate_params(mss: u32, rate: DctcpRateParams) -> Self {
        Dctcp { rate, ..Dctcp::new(mss) }
    }

    /// Current alpha estimate (mark-fraction EWMA).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Closes out the observation window if ~1 RTT has elapsed: folds
    /// the mark fraction into alpha and starts a fresh window.
    fn roll_window(&mut self, info: &AckInfo) {
        let rtt = info.srtt.unwrap_or(SimTime::from_us(100));
        match self.window_end {
            Some(end) if info.now < end => {}
            _ => {
                if self.bytes_acked_win > 0 {
                    let f = self.bytes_marked_win as f64 / self.bytes_acked_win as f64;
                    self.alpha = (1.0 - self.gain) * self.alpha + self.gain * f;
                }
                self.bytes_acked_win = 0;
                self.bytes_marked_win = 0;
                self.window_end = Some(info.now + rtt);
                self.reduced_this_window = false;
            }
        }
    }
}

impl CongCtrl for Dctcp {
    fn on_ack(&mut self, info: AckInfo) {
        self.roll_window(&info);
        self.bytes_acked_win += info.acked as u64;
        if info.ece {
            self.bytes_marked_win += info.acked as u64;
            if self.cwnd < self.ssthresh {
                // A mark ends slow start.
                self.ssthresh = self.cwnd;
            }
            if !self.reduced_this_window {
                self.reduced_this_window = true;
                // The DCTCP law: cwnd *= (1 - alpha/2).
                let reduce = (self.cwnd as f64 * self.alpha / 2.0) as u32;
                self.cwnd = self.cwnd.saturating_sub(reduce).max(2 * self.mss);
                self.ssthresh = self.cwnd;
                return;
            }
        }
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(info.acked.min(self.mss));
        } else {
            self.acked_accum += info.acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = self.cwnd.saturating_add(self.mss);
            }
        }
    }

    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.mss;
    }

    fn on_fast_retransmit(&mut self) {
        // Actual loss (not just a mark): fall back to Reno halving.
        self.ssthresh = (self.cwnd / 2).max(2 * self.mss);
        self.cwnd = self.ssthresh;
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn rate_iteration(
        &self,
        st: &mut CcState,
        fb: RateFeedback,
        current_bps: u64,
        interval_secs: f64,
    ) -> u64 {
        let p = &self.rate;
        let mut rate = current_bps as f64;

        // Track the achieved rate so the target can't run away from
        // what the flow actually moves (TIMELY-paper-style rate cap).
        if fb.ackb > 0 {
            let measured = fb.ackb as f64 * 8.0 / interval_secs;
            st.rate_ewma = if st.rate_ewma == 0.0 {
                measured
            } else {
                0.8 * st.rate_ewma + 0.2 * measured
            };
            rate = rate.min(st.rate_ewma.max(measured) * p.cap_factor);
        }

        // alpha <- (1-g)*alpha + g*F, F = marked fraction this interval.
        if fb.ackb > 0 {
            let f = (fb.ecnb as f64 / fb.ackb as f64).min(1.0);
            st.alpha = (1.0 - p.gain) * st.alpha + p.gain * f;
        }

        let congested = fb.ecnb > 0 || fb.frexmits > 0;
        if congested {
            st.slow_start = false;
        }

        if fb.frexmits > 0 {
            // Loss: multiplicative decrease, classic halving.
            rate /= 2.0;
        } else if fb.ecnb > 0 {
            // Marks only: gentle DCTCP reduction by alpha/2.
            rate *= 1.0 - st.alpha / 2.0;
        } else if st.slow_start {
            rate *= 2.0;
        } else if fb.ackb > 0 {
            rate += p.ai_bps as f64;
        }

        (rate as u64).clamp(p.min_bps, p.max_bps)
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}
