//! Unified congestion control for both stacks.
//!
//! One trait, three algorithms. [`CongCtrl`] carries the two facets a
//! congestion-control algorithm needs in this workspace:
//!
//! * the **window facet** (`on_ack` / `on_timeout` / `on_fast_retransmit`
//!   / `cwnd`), used per-connection by the reference TCP engine
//!   (`tas-tcp`) and the baseline stacks — algorithm state lives inside
//!   the boxed object;
//! * the **rate facet** (`rate_iteration`), used per-flow by the TAS slow
//!   path's control loop (§3.2) — per-flow state lives *outside* the
//!   algorithm in a [`CcState`] (the flow table owns it; the paper's
//!   Table 3 `cc_*` fields), so one algorithm object can police thousands
//!   of flows.
//!
//! [`NewReno`], [`Dctcp`], and [`Timely`] are the three impls. The
//! arithmetic is the exact code that previously lived duplicated across
//! `crates/tcp/src/cc.rs` (window NewReno/DCTCP) and `crates/tas/src/cc.rs`
//! (rate DCTCP/TIMELY); `tests/cc_bitidentity.rs` pins pre-unification
//! trajectories bit-for-bit to prove the move changed no behavior.
// Panic-freedom is a stack invariant: unwrap/expect are denied in
// production code (tests are exempt); see tas-lint rule R4.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use tas_sim::SimTime;

mod dctcp;
mod newreno;
mod timely;

pub use dctcp::{Dctcp, DctcpRateParams};
pub use newreno::NewReno;
pub use timely::{Timely, TimelyParams};

/// Which congestion-control algorithm a connection runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcKind {
    /// Loss-based NewReno (the "TCP" lines in the paper's figures).
    NewReno,
    /// DCTCP (ECN-proportional backoff; window- or rate-mode).
    Dctcp,
    /// TIMELY (RTT-gradient control; window- or rate-mode).
    Timely,
}

/// Feedback for one ACK arrival (window facet).
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Newly acknowledged bytes.
    pub acked: u32,
    /// The ACK carried an ECN echo.
    pub ece: bool,
    /// Arrival time.
    pub now: SimTime,
    /// RTT estimate at this point, if known.
    pub srtt: Option<SimTime>,
}

/// Per-flow congestion-control state for the rate facet: the Table-3
/// `cc_*` fields. Owned by the flow (the TAS flow table), mutated only by
/// [`CongCtrl::rate_iteration`].
#[derive(Clone, Copy, Debug)]
pub struct CcState {
    /// EWMA of the ECN-marked byte fraction (DCTCP alpha).
    pub alpha: f64,
    /// EWMA of the measured send rate in bits/second.
    pub rate_ewma: f64,
    /// Still in slow start (no congestion seen yet).
    pub slow_start: bool,
    /// Previous control-interval RTT sample in µs (TIMELY gradient).
    pub prev_rtt_us: u32,
}

impl CcState {
    /// Fresh-flow state: conservative alpha = 1.0, slow start on.
    pub fn new() -> Self {
        CcState {
            alpha: 1.0,
            rate_ewma: 0.0,
            slow_start: true,
            prev_rtt_us: 0,
        }
    }
}

impl Default for CcState {
    fn default() -> Self {
        CcState::new()
    }
}

/// One control interval's accumulated fast-path feedback (rate facet).
/// The caller (flow owner) reads-and-resets its counters into this.
#[derive(Clone, Copy, Debug)]
pub struct RateFeedback {
    /// Bytes newly acknowledged this interval.
    pub ackb: u64,
    /// Of those, bytes whose ACKs carried ECN echoes.
    pub ecnb: u64,
    /// Fast retransmits triggered this interval.
    pub frexmits: u8,
    /// Current smoothed RTT estimate in µs (0 = no sample yet).
    pub rtt_est_us: u32,
}

/// A congestion-control algorithm: window facet for the per-connection
/// engines, rate facet for the TAS slow path.
pub trait CongCtrl: std::fmt::Debug {
    /// Processes one (possibly ECN-echoing) ACK.
    fn on_ack(&mut self, info: AckInfo);
    /// Reacts to a retransmission timeout.
    fn on_timeout(&mut self);
    /// Reacts to entering fast recovery (triple duplicate ACK).
    fn on_fast_retransmit(&mut self);
    /// Current congestion window in bytes.
    fn cwnd(&self) -> u32;
    /// Slow-start threshold in bytes (for inspection/tests).
    fn ssthresh(&self) -> u32;
    /// One rate-mode control iteration over external per-flow state:
    /// consumes this interval's feedback and returns the new rate in
    /// bits/second.
    fn rate_iteration(
        &self,
        st: &mut CcState,
        fb: RateFeedback,
        current_bps: u64,
        interval_secs: f64,
    ) -> u64;
    /// Algorithm name for experiment output.
    fn name(&self) -> &'static str;
}

/// Initial window: 10 segments (RFC 6928, what Linux uses).
pub(crate) const INIT_WINDOW_SEGS: u32 = 10;

/// Creates the window-facet algorithm for `kind` with the given MSS.
pub fn make_cc(kind: CcKind, mss: u32) -> Box<dyn CongCtrl> {
    match kind {
        CcKind::NewReno => Box::new(NewReno::new(mss)),
        CcKind::Dctcp => Box::new(Dctcp::new(mss)),
        CcKind::Timely => Box::new(Timely::new(mss)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1448;

    fn ack(acked: u32, ece: bool, t_us: u64) -> AckInfo {
        AckInfo {
            acked,
            ece,
            now: SimTime::from_us(t_us),
            srtt: Some(SimTime::from_us(100)),
        }
    }

    #[test]
    fn newreno_slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new(MSS);
        let start = cc.cwnd();
        // Ack a full window: cwnd should double in slow start.
        let mut acked = 0;
        while acked < start {
            cc.on_ack(ack(MSS, false, 1));
            acked += MSS;
        }
        assert!(
            cc.cwnd() >= 2 * start - MSS,
            "cwnd {} vs {}",
            cc.cwnd(),
            start
        );
    }

    #[test]
    fn newreno_congestion_avoidance_linear() {
        let mut cc = NewReno::new(MSS);
        cc.on_timeout();
        // ssthresh is now low; grow past it into CA.
        while cc.cwnd() < cc.ssthresh() {
            cc.on_ack(ack(MSS, false, 1));
        }
        let w = cc.cwnd();
        // One full window of ACKs adds exactly one MSS.
        let mut acked = 0;
        while acked < w {
            cc.on_ack(ack(MSS, false, 2));
            acked += MSS;
        }
        assert_eq!(cc.cwnd(), w + MSS);
    }

    #[test]
    fn newreno_loss_responses() {
        let mut cc = NewReno::new(MSS);
        let w0 = cc.cwnd();
        cc.on_fast_retransmit();
        assert_eq!(cc.cwnd(), w0 / 2);
        cc.on_timeout();
        assert_eq!(cc.cwnd(), MSS);
        assert_eq!(cc.ssthresh(), (w0 / 2 / 2).max(2 * MSS));
    }

    #[test]
    fn newreno_ece_acts_like_loss() {
        let mut cc = NewReno::new(MSS);
        let w0 = cc.cwnd();
        cc.on_ack(ack(MSS, true, 1));
        assert_eq!(cc.cwnd(), w0 / 2);
    }

    #[test]
    fn newreno_rate_facet_holds() {
        // NewReno is window-only: its rate facet holds the configured
        // rate (the slow path's CcAlgo::None semantics).
        let cc = NewReno::new(MSS);
        let mut st = CcState::new();
        let fb = RateFeedback {
            ackb: 10_000,
            ecnb: 10_000,
            frexmits: 3,
            rtt_est_us: 900,
        };
        assert_eq!(cc.rate_iteration(&mut st, fb, 250_000_000, 2e-4), 250_000_000);
    }

    #[test]
    fn dctcp_alpha_tracks_mark_fraction() {
        let mut cc = Dctcp::new(MSS);
        // Feed many windows with ~50% marked bytes.
        let mut t = 0;
        for _ in 0..300 {
            t += 200; // 2 windows of 100us RTT.
            cc.on_ack(AckInfo {
                acked: MSS,
                ece: t % 400 == 0,
                now: SimTime::from_us(t),
                srtt: Some(SimTime::from_us(100)),
            });
        }
        assert!(
            (cc.alpha() - 0.5).abs() < 0.15,
            "alpha {} should approach 0.5",
            cc.alpha()
        );
    }

    #[test]
    fn dctcp_gentle_reduction_scales_with_alpha() {
        let mut cc = Dctcp::new(MSS);
        // Converge alpha near zero first (no marks).
        for i in 0..2000 {
            cc.on_ack(ack(MSS, false, 1 + i * 10));
        }
        let w = cc.cwnd();
        let alpha = cc.alpha();
        assert!(alpha < 0.05, "alpha {alpha}");
        // A single mark now barely dents the window.
        cc.on_ack(ack(MSS, true, 1_000_000));
        let reduce = w - cc.cwnd();
        assert!(
            (reduce as f64) <= w as f64 * 0.05,
            "gentle: reduced {reduce} of {w}"
        );
    }

    #[test]
    fn dctcp_reduces_once_per_window() {
        let mut cc = Dctcp::new(MSS);
        let w0 = cc.cwnd();
        cc.on_ack(ack(MSS, true, 100));
        let w1 = cc.cwnd();
        assert!(w1 < w0);
        // Same observation window: second mark must not reduce again.
        cc.on_ack(ack(MSS, true, 110));
        assert!(cc.cwnd() >= w1, "no double reduction within a window");
    }

    #[test]
    fn dctcp_timeout_collapses_window() {
        let mut cc = Dctcp::new(MSS);
        cc.on_timeout();
        assert_eq!(cc.cwnd(), MSS);
    }

    #[test]
    fn timely_window_gradient_responds() {
        let mut cc = Timely::new(MSS);
        // RTT above t_high: multiplicative decrease out of slow start.
        cc.on_ack(AckInfo {
            acked: MSS,
            ece: false,
            now: SimTime::from_us(100),
            srtt: Some(SimTime::from_us(1000)),
        });
        let w = cc.cwnd();
        assert!(w < INIT_WINDOW_SEGS * MSS, "high RTT must shrink: {w}");
        // RTT below t_low: additive growth.
        cc.on_ack(AckInfo {
            acked: MSS,
            ece: false,
            now: SimTime::from_us(200),
            srtt: Some(SimTime::from_us(30)),
        });
        assert!(cc.cwnd() > w);
        cc.on_timeout();
        assert_eq!(cc.cwnd(), MSS);
    }

    #[test]
    fn timely_window_trajectory_is_deterministic() {
        let drive = || {
            let mut cc = Timely::new(MSS);
            let mut traj = Vec::new();
            for i in 0u64..50 {
                cc.on_ack(AckInfo {
                    acked: MSS,
                    ece: false,
                    now: SimTime::from_us(i * 100),
                    srtt: Some(SimTime::from_us(40 + (i * 37) % 600)),
                });
                traj.push(cc.cwnd());
            }
            traj
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    fn factory_dispatches() {
        assert_eq!(make_cc(CcKind::NewReno, MSS).name(), "newreno");
        assert_eq!(make_cc(CcKind::Dctcp, MSS).name(), "dctcp");
        assert_eq!(make_cc(CcKind::Timely, MSS).name(), "timely");
    }
}
