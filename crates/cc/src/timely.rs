//! TIMELY (Mittal et al., SIGCOMM 2015): RTT-gradient congestion control,
//! adapted for TCP by adding slow start. Rate mode is the TAS slow-path
//! control law; window mode applies the same thresholds/gradient rules to
//! a congestion window.

use crate::{AckInfo, CcState, CongCtrl, RateFeedback, INIT_WINDOW_SEGS};

/// Parameters for TIMELY, shared by the window and rate facets.
#[derive(Clone, Copy, Debug)]
pub struct TimelyParams {
    /// Low RTT threshold: below it, increase additively.
    pub t_low_us: u32,
    /// High RTT threshold: above it, decrease multiplicatively.
    pub t_high_us: u32,
    /// Multiplicative decrease factor β.
    pub beta: f64,
    /// Additive increase step in bits/second (rate mode).
    pub delta_bps: u64,
    /// Minimum RTT for gradient normalization.
    pub min_rtt_us: u32,
    /// Rate floor.
    pub min_bps: u64,
    /// Rate ceiling.
    pub max_bps: u64,
}

impl Default for TimelyParams {
    fn default() -> Self {
        TimelyParams {
            t_low_us: 50,
            t_high_us: 500,
            beta: 0.8,
            delta_bps: 10_000_000,
            min_rtt_us: 20,
            min_bps: 1_000_000,
            max_bps: 10_000_000_000,
        }
    }
}

/// Delay-gradient congestion control. The window facet mirrors the rate
/// law: slow-start doubling while the RTT stays under `t_low`, additive
/// increase below `t_low`, multiplicative decrease above `t_high`, and
/// the normalized-gradient rule in between. ECN echoes are ignored —
/// TIMELY is purely delay-based.
#[derive(Debug)]
pub struct Timely {
    mss: u32,
    cwnd: u32,
    ssthresh: u32,
    slow_start: bool,
    /// Previous RTT sample in µs for the gradient (0 = none yet).
    prev_rtt_us: u32,
    params: TimelyParams,
}

impl Timely {
    pub fn new(mss: u32) -> Self {
        Timely::with_params(mss, TimelyParams::default())
    }

    /// Creates TIMELY with custom thresholds (both facets use them).
    pub fn with_params(mss: u32, params: TimelyParams) -> Self {
        Timely {
            mss,
            cwnd: INIT_WINDOW_SEGS * mss,
            ssthresh: u32::MAX,
            slow_start: true,
            prev_rtt_us: 0,
            params,
        }
    }

    fn floor(&self) -> u32 {
        2 * self.mss
    }
}

impl CongCtrl for Timely {
    fn on_ack(&mut self, info: AckInfo) {
        let p = self.params;
        // No RTT sample yet: grow like slow start / CA would.
        let rtt = match info.srtt {
            Some(s) => (s.as_micros().max(1)) as u32,
            None => {
                self.cwnd = self.cwnd.saturating_add(info.acked.min(self.mss));
                return;
            }
        };
        let prev = if self.prev_rtt_us == 0 { rtt } else { self.prev_rtt_us };
        self.prev_rtt_us = rtt;
        if self.slow_start {
            if rtt > p.t_low_us {
                self.slow_start = false;
                self.ssthresh = self.cwnd;
            } else {
                self.cwnd = self.cwnd.saturating_add(info.acked.min(self.mss));
                return;
            }
        }
        if rtt < p.t_low_us {
            self.cwnd = self.cwnd.saturating_add(self.mss);
        } else if rtt > p.t_high_us {
            let factor = 1.0 - p.beta * (1.0 - p.t_high_us as f64 / rtt as f64);
            self.cwnd = ((self.cwnd as f64 * factor) as u32).max(self.floor());
        } else {
            let gradient = (rtt as f64 - prev as f64) / p.min_rtt_us as f64;
            if gradient <= 0.0 {
                self.cwnd = self.cwnd.saturating_add(self.mss);
            } else {
                let factor = 1.0 - p.beta * gradient.min(1.0);
                self.cwnd = ((self.cwnd as f64 * factor) as u32).max(self.floor());
            }
        }
    }

    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(self.floor());
        self.cwnd = self.mss;
        self.slow_start = false;
    }

    fn on_fast_retransmit(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(self.floor());
        self.cwnd = self.ssthresh;
        self.slow_start = false;
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn rate_iteration(
        &self,
        st: &mut CcState,
        fb: RateFeedback,
        current_bps: u64,
        _interval_secs: f64,
    ) -> u64 {
        let p = &self.params;
        if fb.ackb == 0 {
            // No feedback this interval: hold.
            return current_bps;
        }
        let rtt = fb.rtt_est_us.max(1);
        let prev = if st.prev_rtt_us == 0 { rtt } else { st.prev_rtt_us };
        st.prev_rtt_us = rtt;
        let mut rate = current_bps as f64;
        if st.slow_start {
            if rtt > p.t_low_us {
                st.slow_start = false;
            } else {
                return ((rate * 2.0) as u64).clamp(p.min_bps, p.max_bps);
            }
        }
        if rtt < p.t_low_us {
            rate += p.delta_bps as f64;
        } else if rtt > p.t_high_us {
            rate *= 1.0 - p.beta * (1.0 - p.t_high_us as f64 / rtt as f64);
        } else {
            let gradient = (rtt as f64 - prev as f64) / p.min_rtt_us as f64;
            if gradient <= 0.0 {
                rate += p.delta_bps as f64;
            } else {
                rate *= 1.0 - p.beta * gradient.min(1.0);
            }
        }
        (rate as u64).clamp(p.min_bps, p.max_bps)
    }

    fn name(&self) -> &'static str {
        "timely"
    }
}
