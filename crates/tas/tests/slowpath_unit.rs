//! Direct slow-path tests: handshakes, teardown, congestion-control
//! iterations, and the stall detector, exercised without a network by
//! feeding segments straight between a slow path/fast path pair.

use std::net::Ipv4Addr;
use tas::fastpath::FastPath;
use tas::slowpath::{SlowPath, SpAppEvent};
use tas::{CcAlgo, TasConfig, TasCosts};
use tas_cpusim::CycleAccount;
use tas_proto::{MacAddr, Segment, TcpFlags, TcpHeader};
use tas_sim::SimTime;

fn server_pair(cc: CcAlgo) -> (SlowPath, FastPath) {
    let ip = Ipv4Addr::new(10, 0, 0, 1);
    let mac = MacAddr::for_host(1);
    let cfg = TasConfig {
        cc,
        ..TasConfig::rpc_bench(1, 1)
    };
    (
        SlowPath::new(ip, mac, &cfg),
        FastPath::new(ip, mac, cfg.mss, TasCosts::default()),
    )
}

fn syn(sport: u16, iss: u32) -> Segment {
    let mut h = TcpHeader::new(sport, 80, iss, 0, TcpFlags::SYN);
    h.flags |= TcpFlags::ECE | TcpFlags::CWR;
    h.options.mss = Some(1448);
    h.options.wscale = Some(7);
    h.options.timestamp = Some((10, 0));
    h.window = 8192;
    Segment::tcp(
        MacAddr::for_host(2),
        MacAddr::for_host(1),
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(10, 0, 0, 1),
        h,
        Vec::new(),
        false,
    )
}

fn plain_ack(sport: u16, seq: u32, ack: u32) -> Segment {
    let mut h = TcpHeader::new(sport, 80, seq, ack, TcpFlags::ACK);
    h.options.timestamp = Some((11, 1));
    h.window = 8192;
    Segment::tcp(
        MacAddr::for_host(2),
        MacAddr::for_host(1),
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(10, 0, 0, 1),
        h,
        Vec::new(),
        false,
    )
}

/// Walks a passive handshake through SYN → SYN-ACK → final ACK.
fn establish(sp: &mut SlowPath, fp: &mut FastPath, sport: u16) -> u32 {
    let mut acct = CycleAccount::new();
    let t = SimTime::from_us(10);
    sp.listen(80);
    sp.on_exception(t, syn(sport, 5000), fp, 9000, 77, 0, &mut acct);
    assert!(sp.has_pending_accepts());
    sp.accept_pending(t, &mut acct);
    let synack = sp.out.packets.pop().expect("SYN-ACK staged");
    assert!(synack.tcp.flags.contains(TcpFlags::SYN | TcpFlags::ACK));
    assert!(synack.tcp.flags.contains(TcpFlags::ECE), "ECN accepted");
    assert_eq!(synack.tcp.ack, 5001);
    // Final ACK completes the handshake and installs the flow.
    sp.on_exception(
        t + SimTime::from_us(50),
        plain_ack(sport, 5001, synack.tcp.seq.wrapping_add(1)),
        fp,
        0,
        0,
        0,
        &mut acct,
    );
    let fid = match sp.out.events.iter().find_map(|e| match e {
        SpAppEvent::AcceptDone { fid, .. } => Some(*fid),
        _ => None,
    }) {
        Some(f) => f,
        None => panic!("AcceptDone expected, got {:?}", sp.out.events),
    };
    sp.out.events.clear();
    fid
}

#[test]
fn passive_handshake_installs_flow() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let fid = establish(&mut sp, &mut fp, 4000);
    let flow = fp.flows.get(fid).expect("installed");
    assert_eq!(flow.rcv.irs, 5000);
    assert_eq!(flow.conn.opaque, 77);
    assert_eq!(flow.fc.peer_wscale, 7);
    assert_eq!(sp.stats.established, 1);
}

#[test]
fn duplicate_syn_reanswers_synack() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let mut acct = CycleAccount::new();
    let t = SimTime::from_us(10);
    sp.listen(80);
    sp.on_exception(t, syn(4000, 5000), fp_mut(&mut fp), 9000, 1, 0, &mut acct);
    sp.accept_pending(t, &mut acct);
    assert_eq!(sp.out.packets.len(), 1);
    // The client's SYN retransmission must elicit another SYN-ACK.
    sp.on_exception(
        t + SimTime::from_ms(1),
        syn(4000, 5000),
        &mut fp,
        0,
        2,
        0,
        &mut acct,
    );
    assert_eq!(sp.out.packets.len(), 2);
    assert!(sp.out.packets[1]
        .tcp
        .flags
        .contains(TcpFlags::SYN | TcpFlags::ACK));
}

fn fp_mut(fp: &mut FastPath) -> &mut FastPath {
    fp
}

#[test]
fn syn_to_closed_port_is_dropped() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let mut acct = CycleAccount::new();
    sp.on_exception(
        SimTime::from_us(1),
        syn(4000, 5000),
        &mut fp,
        1,
        1,
        0,
        &mut acct,
    );
    assert_eq!(sp.stats.dropped, 1);
    assert!(sp.out.packets.is_empty());
}

#[test]
fn rst_tears_down_installed_flow() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let fid = establish(&mut sp, &mut fp, 4000);
    let mut acct = CycleAccount::new();
    let mut rst = plain_ack(4000, 5001, 1);
    rst.tcp.flags = TcpFlags::RST;
    sp.on_exception(SimTime::from_ms(1), rst, &mut fp, 0, 0, 0, &mut acct);
    assert!(fp.flows.get(fid).is_none(), "flow removed on RST");
    assert!(sp
        .out
        .events
        .iter()
        .any(|e| matches!(e, SpAppEvent::PeerClosed { .. })));
}

#[test]
fn peer_fin_acks_and_notifies() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let fid = establish(&mut sp, &mut fp, 4000);
    let mut acct = CycleAccount::new();
    let mut fin = plain_ack(4000, 5001, 1);
    fin.tcp.flags = TcpFlags::FIN | TcpFlags::ACK;
    // Patch the ACK to the server's actual sequence space.
    let iss = fp.flows.get(fid).expect("flow").snd.iss;
    fin.tcp.ack = iss.wrapping_add(1);
    sp.on_exception(SimTime::from_ms(1), fin, &mut fp, 0, 0, 0, &mut acct);
    let ack = sp.out.packets.pop().expect("FIN must be ACKed");
    assert_eq!(ack.tcp.ack, 5002, "FIN occupies one sequence number");
    assert!(sp
        .out
        .events
        .iter()
        .any(|e| matches!(e, SpAppEvent::PeerClosed { fid: f } if *f == fid)));
    // Flow stays installed until the app closes.
    assert!(fp.flows.get(fid).is_some());
    // App closes: teardown detaches the flow and sends our FIN.
    sp.out.packets.clear();
    sp.close(SimTime::from_ms(2), fid, &mut fp, &mut acct);
    assert!(fp.flows.get(fid).is_none(), "flow detached");
    let our_fin = sp.out.packets.pop().expect("our FIN staged");
    assert!(our_fin.tcp.flags.contains(TcpFlags::FIN));
    // Peer acks our FIN: teardown completes.
    sp.out.events.clear();
    sp.on_exception(
        SimTime::from_ms(3),
        plain_ack(4000, 5002, our_fin.tcp.seq.wrapping_add(1)),
        &mut fp,
        0,
        0,
        0,
        &mut acct,
    );
    assert!(sp
        .out
        .events
        .iter()
        .any(|e| matches!(e, SpAppEvent::CloseDone { .. })));
    assert_eq!(sp.stats.closed, 1);
}

#[test]
fn control_loop_runs_rate_cc_and_updates_buckets() {
    let (mut sp, mut fp) = server_pair(CcAlgo::DctcpRate);
    let fid = establish(&mut sp, &mut fp, 4000);
    let mut acct = CycleAccount::new();
    // Pretend the fast path accumulated clean feedback.
    {
        let flow = fp.flows.get_mut(fid).expect("flow");
        flow.cc.state.slow_start = false;
        flow.cc.cnt_ackb = 1_000_000;
        flow.conn.rtt_est_us = 50;
    }
    let before = fp.flows.get(fid).expect("flow").cc.bucket.rate_bps;
    sp.control_loop(SimTime::from_ms(1), &mut fp, &mut acct);
    let after = fp.flows.get(fid).expect("flow").cc.bucket.rate_bps;
    assert!(
        after > before,
        "clean interval must raise the rate: {before} -> {after}"
    );
    // Feedback counters were consumed.
    assert_eq!(fp.flows.get(fid).expect("flow").cc.cnt_ackb, 0);
}

#[test]
fn stall_detector_triggers_retransmit() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let fid = establish(&mut sp, &mut fp, 4000);
    let mut acct = CycleAccount::new();
    // Unacked data with a frozen left edge.
    {
        let flow = fp.flows.get_mut(fid).expect("flow");
        flow.snd.tx.append(&[1u8; 1448]).expect("fits");
        flow.snd.tx_sent = 1448;
        flow.snd.max_sent_off = 1448;
        flow.conn.rtt_est_us = 50;
    }
    // Needs the configured number of stalled iterations.
    let mut retransmitted = false;
    for i in 1..=4 {
        sp.control_loop(SimTime::from_ms(i), &mut fp, &mut acct);
        if !fp.out.packets.is_empty() {
            retransmitted = true;
            break;
        }
    }
    assert!(retransmitted, "stall detector must go-back-N");
    assert!(sp.stats.timeout_rexmits >= 1);
    let flow = fp.flows.get(fid).expect("flow");
    assert_eq!(flow.cc.cnt_frexmits, 1, "loss signalled to CC");
}

#[test]
fn handshake_retry_and_give_up() {
    let (mut sp, mut fp) = server_pair(CcAlgo::None);
    let mut acct = CycleAccount::new();
    // Active connect whose SYN is never answered.
    sp.connect(
        SimTime::from_us(1),
        Ipv4Addr::new(10, 0, 0, 9),
        80,
        MacAddr::for_host(9),
        55,
        0,
        1234,
        &mut acct,
    );
    assert_eq!(sp.out.packets.len(), 1, "SYN staged");
    let mut t = SimTime::from_ms(1);
    let mut gave_up = false;
    for _ in 0..200 {
        t += SimTime::from_ms(11);
        sp.control_loop(t, &mut fp, &mut acct);
        if sp
            .out
            .events
            .iter()
            .any(|e| matches!(e, SpAppEvent::ConnectFailed { opaque: 55 }))
        {
            gave_up = true;
            break;
        }
    }
    assert!(gave_up, "retries must be bounded");
    assert!(sp.stats.handshake_rexmits >= 3, "SYN retransmitted first");
}
