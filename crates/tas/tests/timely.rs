//! End-to-end TIMELY: the RTT-gradient policy must keep bulk transfers
//! flowing and keep the bottleneck queue (and therefore RTT) bounded.

use std::net::Ipv4Addr;
use tas::host::timers;
use tas::{CcAlgo, TasConfig, TasHost};
use tas_netsim::app::{App, AppEvent, StackApi};
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{impl_as_any, AgentId, Sim, SimTime};

struct Blaster {
    server: Ipv4Addr,
    conns: u32,
    sent: u64,
}
impl App for Blaster {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.conns {
            api.connect(self.server, 9);
        }
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        if let AppEvent::Connected { sock } | AppEvent::Writable { sock } = ev {
            loop {
                let n = api.send(sock, &[0x55; 4096]);
                self.sent += n as u64;
                if n < 4096 {
                    break;
                }
            }
        }
    }
    impl_as_any!();
}

struct Sink {
    total: u64,
}
impl App for Sink {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(9);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        if let AppEvent::Readable { sock } = ev {
            self.total += api.recv(sock, usize::MAX).len() as u64;
        }
    }
    impl_as_any!();
}

#[test]
fn timely_sustains_throughput_and_bounds_rtt() {
    let mut sim: Sim<NetMsg> = Sim::new(3);
    let recv_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let mut cfg = TasConfig::rpc_bench(2, 2);
        cfg.cc = CcAlgo::Timely;
        cfg.initial_rate_bps = 100_000_000;
        cfg.control_interval = SimTime::from_us(200);
        cfg.rx_buf = 128 * 1024;
        cfg.tx_buf = 128 * 1024;
        cfg.max_core_backlog = SimTime::from_ms(50);
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(Sink { total: 0 })
        } else {
            Box::new(Blaster {
                server: recv_ip,
                conns: 8,
                sent: 0,
            })
        };
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            app,
        )))
    };
    // No ECN: TIMELY reacts to RTT only.
    let mut port = PortConfig::tengig();
    port.ecn_threshold_pkts = None;
    let topo = build_star(
        &mut sim,
        3,
        move |_| port,
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, timers::INIT, 0);
    }
    sim.run_until(SimTime::from_ms(40));
    let b0 = sim.agent::<TasHost>(topo.hosts[0]).app_as::<Sink>().total;
    sim.run_until(SimTime::from_ms(90));
    let recv = sim.agent::<TasHost>(topo.hosts[0]);
    let b1 = recv.app_as::<Sink>().total;
    let gbps = (b1 - b0) as f64 * 8.0 / 0.05 / 1e9;
    assert!(
        gbps > 4.0,
        "TIMELY must sustain throughput, got {gbps:.2} Gbps"
    );
    // RTT bounded: t_high is 500us; allow slack for control lag.
    let rtts = sim.agent::<TasHost>(topo.hosts[1]).sample_rtts(8);
    let max_rtt = rtts.iter().copied().max().unwrap_or(0);
    assert!(
        max_rtt < 2_000,
        "TIMELY must bound RTT near t_high: sender RTTs {rtts:?} us"
    );
    // No drop-tail losses: pacing kept the queue under the 512-pkt cap.
    let fr = sim.agent::<TasHost>(topo.hosts[1]).fp_stats().fast_rexmits;
    assert!(
        fr < 50,
        "pacing should mostly avoid drops, got {fr} fast rexmits"
    );
}
