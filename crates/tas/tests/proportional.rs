//! Workload-proportionality tests (§3.4): the slow path grows the
//! fast-path core set under load, shrinks it when load departs, and the
//! RSS redirection table follows.

use std::net::Ipv4Addr;
use tas::host::timers;
use tas::{ApiKind, CcAlgo, TasConfig, TasHost};
use tas_netsim::app::{App, AppEvent, StackApi};
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{impl_as_any, AgentId, Sim, SimTime};

/// Echo app (local copy to keep the crate's dev-deps slim).
struct Echo;
impl App for Echo {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(7);
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Readable { sock } => {
                let d = api.recv(sock, usize::MAX);
                api.charge_app_cycles(200);
                api.send(sock, &d);
            }
            AppEvent::Closed { sock } => api.close(sock),
            _ => {}
        }
    }
    impl_as_any!();
}

/// Closed-loop pinger: `conns` sockets, fires immediately on response.
struct Pinger {
    server: Ipv4Addr,
    conns: u32,
    stop_at: SimTime,
    done: u64,
}
impl App for Pinger {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.conns {
            api.connect(self.server, 7);
        }
    }
    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Connected { sock } => {
                api.send(sock, &[0u8; 64]);
            }
            AppEvent::Readable { sock } => {
                let d = api.recv(sock, usize::MAX);
                if d.len() >= 64 {
                    self.done += 1;
                    if self.stop_at == SimTime::ZERO || api.now() < self.stop_at {
                        api.send(sock, &[0u8; 64]);
                    }
                }
            }
            _ => {}
        }
    }
    impl_as_any!();
}

fn build(load_stop: SimTime) -> (Sim<NetMsg>, AgentId, AgentId) {
    let mut sim: Sim<NetMsg> = Sim::new(5);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        if spec.index == 0 {
            let cfg = TasConfig {
                // Slow clock: a few dozen closed-loop connections saturate
                // multiple fast-path cores.
                freq_hz: 50_000_000,
                max_fp_cores: 6,
                initial_fp_cores: 1,
                app_cores: 4,
                api: ApiKind::Sockets,
                cc: CcAlgo::None,
                rx_buf: 2048,
                tx_buf: 2048,
                proportional: true,
                max_core_backlog: SimTime::from_ms(50),
                ..TasConfig::default()
            };
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                Box::new(Echo),
            )))
        } else {
            let cfg = TasConfig::rpc_bench(2, 2);
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                cfg,
                spec.uplink,
                Box::new(Pinger {
                    server: server_ip,
                    conns: 64,
                    stop_at: load_stop,
                    done: 0,
                }),
            )))
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, timers::INIT, 0);
    }
    (sim, topo.hosts[0], topo.hosts[1])
}

#[test]
fn controller_scales_up_under_load() {
    let (mut sim, server, client) = build(SimTime::ZERO);
    sim.run_until(SimTime::from_ms(200));
    let srv = sim.agent::<TasHost>(server);
    assert!(
        srv.active_fp_cores() >= 3,
        "sustained overload must add cores, got {}",
        srv.active_fp_cores()
    );
    assert!(
        srv.registry()
            .counter_value("host.scale_events", tas_sim::Scope::Global)
            >= 2
    );
    // RSS follows the active set.
    assert!(sim.agent::<TasHost>(client).app_as::<Pinger>().done > 1_000);
}

#[test]
fn controller_scales_back_down_when_idle() {
    let (mut sim, server, _client) = build(SimTime::from_ms(150));
    sim.run_until(SimTime::from_ms(150));
    let peak = sim.agent::<TasHost>(server).active_fp_cores();
    assert!(peak >= 3, "ramped up first (got {peak})");
    // Load stops at 150 ms; the monitor should shed cores.
    sim.run_until(SimTime::from_ms(400));
    let after = sim.agent::<TasHost>(server).active_fp_cores();
    assert!(
        after < peak,
        "idle cores must be released: peak {peak}, after {after}"
    );
    assert_eq!(after, 1, "fully idle host returns to one core");
}

#[test]
fn fixed_allocation_never_scales() {
    // proportional = false (rpc_bench): core count must never change.
    let mut sim: Sim<NetMsg> = Sim::new(6);
    let server_ip = host_ip(0);
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| -> AgentId {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(Echo)
        } else {
            Box::new(Pinger {
                server: server_ip,
                conns: 32,
                stop_at: SimTime::ZERO,
                done: 0,
            })
        };
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            TasConfig::rpc_bench(2, 2),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, timers::INIT, 0);
    }
    sim.run_until(SimTime::from_ms(100));
    let srv = sim.agent::<TasHost>(topo.hosts[0]);
    assert_eq!(srv.active_fp_cores(), 2);
    assert_eq!(
        srv.registry()
            .counter_value("host.scale_events", tas_sim::Scope::Global),
        0
    );
}
