//! End-to-end TAS tests: two TAS hosts exchanging RPCs across a simulated
//! switch, covering connection setup through the slow path, fast-path data
//! exchange, rate control, loss recovery, and teardown.

use std::net::Ipv4Addr;
use tas::host::timers;
use tas::{CcAlgo, TasConfig, TasHost};
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_netsim::topo::{build_star, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{impl_as_any, AgentId, Sim, SimTime};

/// Echo server: echoes every byte it reads; closes when the peer closes.
struct EchoServer {
    port: u16,
    echoed: u64,
    accepted: u64,
}

impl App for EchoServer {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(self.port);
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Accepted { .. } => self.accepted += 1,
            AppEvent::Readable { sock } => {
                let data = api.recv(sock, usize::MAX);
                self.echoed += data.len() as u64;
                api.charge_app_cycles(300);
                api.send(sock, &data);
            }
            AppEvent::Closed { sock } => {
                api.close(sock);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

/// Closed-loop RPC client: `pipeline` requests in flight, `total` requests,
/// then closes.
struct RpcClient {
    server: Ipv4Addr,
    port: u16,
    req_size: usize,
    total: u32,
    sock: Option<SockId>,
    sent: u32,
    done: u32,
    pending: Vec<u8>,
    rtts_us: Vec<f64>,
    inflight_since: SimTime,
    finished: bool,
}

impl RpcClient {
    fn new(server: Ipv4Addr, port: u16, req_size: usize, total: u32) -> Self {
        RpcClient {
            server,
            port,
            req_size,
            total,
            sock: None,
            sent: 0,
            done: 0,
            pending: Vec::new(),
            rtts_us: Vec::new(),
            inflight_since: SimTime::ZERO,
            finished: false,
        }
    }

    fn fire(&mut self, api: &mut dyn StackApi) {
        let sock = self.sock.expect("connected");
        let req: Vec<u8> = (0..self.req_size)
            .map(|i| ((self.sent as usize + i) % 251) as u8)
            .collect();
        self.inflight_since = api.now();
        let n = api.send(sock, &req);
        assert_eq!(n, req.len(), "request must fit the tx buffer");
        self.sent += 1;
    }
}

impl App for RpcClient {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        self.sock = Some(api.connect(self.server, self.port));
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Connected { .. } => self.fire(api),
            AppEvent::Readable { sock } => {
                let data = api.recv(sock, usize::MAX);
                self.pending.extend_from_slice(&data);
                while self.pending.len() >= self.req_size {
                    let resp: Vec<u8> = self.pending.drain(..self.req_size).collect();
                    // Verify the echo round-tripped intact.
                    for (i, b) in resp.iter().enumerate() {
                        assert_eq!(
                            *b,
                            ((self.done as usize + i) % 251) as u8,
                            "payload corrupted"
                        );
                    }
                    self.done += 1;
                    self.rtts_us
                        .push((api.now() - self.inflight_since).as_micros_f64());
                    if self.done < self.total {
                        self.fire(api);
                    } else {
                        api.close(sock);
                    }
                }
            }
            AppEvent::Closed { .. } => self.finished = true,
            _ => {}
        }
    }

    impl_as_any!();
}

/// Builds a star with a TAS echo server (host 0) and TAS clients.
fn build(
    n_clients: usize,
    server_cfg: TasConfig,
    client_cfg: TasConfig,
    reqs: u32,
    req_size: usize,
    seed: u64,
) -> (Sim<NetMsg>, Vec<AgentId>) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let server_ip = tas_netsim::topo::host_ip(0);
    let mut factory = |sim: &mut Sim<NetMsg>, spec: HostSpec| {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer {
                port: 7,
                echoed: 0,
                accepted: 0,
            })
        } else {
            Box::new(RpcClient::new(server_ip, 7, req_size, reqs))
        };
        let cfg = if spec.index == 0 {
            server_cfg.clone()
        } else {
            client_cfg.clone()
        };
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        1 + n_clients,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for (i, &h) in topo.hosts.iter().enumerate() {
        sim.inject_timer(SimTime::from_us(i as u64), h, timers::INIT, 0);
    }
    (sim, topo.hosts)
}

#[test]
fn single_client_rpc_round_trips() {
    let (mut sim, hosts) = build(
        1,
        TasConfig::rpc_bench(1, 1),
        TasConfig::rpc_bench(1, 1),
        100,
        64,
        1,
    );
    sim.run_until(SimTime::from_ms(200));
    let client = sim.agent::<TasHost>(hosts[1]).app_as::<RpcClient>();
    assert_eq!(client.done, 100, "all RPCs must complete");
    assert!(client.finished, "close handshake must complete");
    let server = sim.agent::<TasHost>(hosts[0]);
    assert_eq!(server.app_as::<EchoServer>().echoed, 100 * 64);
    assert_eq!(server.app_as::<EchoServer>().accepted, 1);
    assert_eq!(server.sp_stats().established, 1);
    assert!(
        server.fp_stats().pkts_rx > 100,
        "data flowed through the fast path"
    );
    // Flow state is gone after teardown on both sides.
    assert_eq!(server.flow_count(), 0);
    assert_eq!(sim.agent::<TasHost>(hosts[1]).flow_count(), 0);
}

#[test]
fn rpc_latency_is_microseconds_scale() {
    let (mut sim, hosts) = build(
        1,
        TasConfig::rpc_bench(1, 1),
        TasConfig::rpc_bench(1, 1),
        200,
        64,
        2,
    );
    sim.run_until(SimTime::from_ms(200));
    let client = sim.agent::<TasHost>(hosts[1]).app_as::<RpcClient>();
    assert_eq!(client.done, 200);
    let mean = client.rtts_us.iter().sum::<f64>() / client.rtts_us.len() as f64;
    // 2 wire hops each way (~1us each) + switch + processing: single-digit
    // microseconds; far below 100.
    assert!(mean > 3.0 && mean < 50.0, "RPC latency {mean}us");
}

#[test]
fn many_clients_all_complete() {
    let (mut sim, hosts) = build(
        8,
        TasConfig::rpc_bench(2, 2),
        TasConfig::rpc_bench(1, 1),
        50,
        64,
        3,
    );
    sim.run_until(SimTime::from_ms(500));
    for h in &hosts[1..] {
        let client = sim.agent::<TasHost>(*h).app_as::<RpcClient>();
        assert_eq!(client.done, 50);
        assert!(client.finished);
    }
    let server = sim.agent::<TasHost>(hosts[0]);
    assert_eq!(server.sp_stats().established, 8);
    assert_eq!(server.sp_stats().closed, 8);
}

#[test]
fn rate_controlled_config_still_completes() {
    // DCTCP-rate enforcement on both sides: the control loop, buckets, and
    // pacing timers are all on the path.
    let mut cfg = TasConfig::rpc_bench(1, 1);
    cfg.cc = CcAlgo::DctcpRate;
    cfg.initial_rate_bps = 100_000_000;
    cfg.control_interval = SimTime::from_us(200);
    let (mut sim, hosts) = build(2, cfg.clone(), cfg, 100, 512, 4);
    sim.run_until(SimTime::from_ms(500));
    for h in &hosts[1..] {
        let client = sim.agent::<TasHost>(*h).app_as::<RpcClient>();
        assert_eq!(client.done, 100, "rate-limited flows must still complete");
    }
}

#[test]
fn loss_recovery_via_slow_path_timeout() {
    // 2% packet loss on the client NIC: lost requests/responses must be
    // recovered by dupack fast-retransmit or the slow-path stall detector.
    let mut sim: Sim<NetMsg> = Sim::new(5);
    let server_ip = tas_netsim::topo::host_ip(0);
    let mut cfg = TasConfig::rpc_bench(1, 1);
    cfg.control_interval = SimTime::from_us(200);
    let cfg2 = cfg.clone();
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer {
                port: 7,
                echoed: 0,
                accepted: 0,
            })
        } else {
            Box::new(RpcClient::new(server_ip, 7, 64, 300))
        };
        let mut nic = spec.nic;
        if spec.index == 1 {
            // Seed 0 derives the stream from the device id — the exact
            // schedule the legacy `tx_loss` shim produced.
            nic.tx_fault = tas_netsim::FaultSpec::uniform_loss(0.02, 0);
        }
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            nic,
            cfg2.clone(),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, timers::INIT, 0);
    }
    sim.run_until(SimTime::from_secs(5));
    let client = sim.agent::<TasHost>(topo.hosts[1]).app_as::<RpcClient>();
    assert_eq!(client.done, 300, "all RPCs must survive 2% loss");
    let server = sim.agent::<TasHost>(topo.hosts[0]);
    let srv_rexmits = server.sp_stats().timeout_rexmits + server.fp_stats().fast_rexmits;
    let cli = sim.agent::<TasHost>(topo.hosts[1]);
    let cli_rexmits = cli.sp_stats().timeout_rexmits + cli.fp_stats().fast_rexmits;
    assert!(
        srv_rexmits + cli_rexmits > 0,
        "losses must have triggered recovery"
    );
}

#[test]
fn fault_schedule_with_auditor_all_rpcs_complete() {
    // Deterministic fault schedule on both directions — drops, duplicates,
    // and reordering on the client NIC (client->network) and on the switch
    // port toward the client (network->client) — with the per-flow
    // invariant auditor live on every fast-/slow-path operation. All RPCs
    // must still complete and round-trip intact.
    use tas_netsim::{FaultSpec, Switch};
    assert!(
        tas::audit::enabled(),
        "auditor must be compiled into test builds"
    );
    let mut sim: Sim<NetMsg> = Sim::new(7);
    let server_ip = tas_netsim::topo::host_ip(0);
    let mut cfg = TasConfig::rpc_bench(1, 1);
    cfg.control_interval = SimTime::from_us(200);
    let cfg2 = cfg.clone();
    let mut factory = move |sim: &mut Sim<NetMsg>, spec: HostSpec| {
        let app: Box<dyn App> = if spec.index == 0 {
            Box::new(EchoServer {
                port: 7,
                echoed: 0,
                accepted: 0,
            })
        } else {
            Box::new(RpcClient::new(server_ip, 7, 64, 300))
        };
        let mut nic = spec.nic;
        if spec.index == 1 {
            nic.tx_fault = FaultSpec::lossy(0.01, 0.01, 0.02, 42);
        }
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            nic,
            cfg2.clone(),
            spec.uplink,
            app,
        )))
    };
    let topo = build_star(
        &mut sim,
        2,
        |i| {
            if i == 1 {
                // Port 1 faces the client: faults on the return direction.
                PortConfig {
                    fault: FaultSpec::lossy(0.01, 0.01, 0.02, 43),
                    ..PortConfig::tengig()
                }
            } else {
                PortConfig::tengig()
            }
        },
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for &h in &topo.hosts {
        sim.inject_timer(SimTime::ZERO, h, timers::INIT, 0);
    }
    let audits_before = tas::audit::checks_performed();
    sim.run_until(SimTime::from_secs(10));
    let client = sim.agent::<TasHost>(topo.hosts[1]).app_as::<RpcClient>();
    assert_eq!(client.done, 300, "all RPCs must survive the fault schedule");
    assert!(client.finished, "close handshake must complete under faults");
    // The injectors actually fired, in both directions (registry-backed
    // snapshot view).
    use tas_sim::Scope;
    let fired = |s: &tas_sim::Snapshot| {
        [
            "fault.dropped",
            "fault.duplicated",
            "fault.reordered",
            "fault.jittered",
            "fault.corrupted",
        ]
        .iter()
        .map(|&n| s.counter(n, Scope::Global))
        .sum::<u64>()
            > 0
    };
    let nic_snap = sim.agent::<TasHost>(topo.hosts[1]).nic().tx_fault_snapshot();
    assert!(
        nic_snap.counter("fault.seen", Scope::Global) > 300,
        "client NIC injector saw traffic"
    );
    assert!(fired(&nic_snap), "client NIC injector injected faults");
    let port_snap = sim.agent::<Switch>(topo.switch).port_fault_snapshot(1);
    assert!(
        port_snap.counter("fault.seen", Scope::Global) > 300,
        "switch port injector saw traffic"
    );
    assert!(fired(&port_snap), "switch port injector injected faults");
    // The auditor ran on the operations of this workload.
    assert!(
        tas::audit::checks_performed() > audits_before,
        "auditor must have checked fast-/slow-path operations"
    );
}

#[test]
fn cycle_accounting_matches_table1_shape() {
    let (mut sim, hosts) = build(
        1,
        TasConfig::rpc_bench(1, 1),
        TasConfig::rpc_bench(1, 1),
        1000,
        64,
        6,
    );
    sim.run_until(SimTime::from_secs(1));
    let server = sim.agent::<TasHost>(hosts[0]);
    let acct = server.account();
    use tas_cpusim::Module;
    let tcp = acct.cycles(Module::Tcp);
    let driver = acct.cycles(Module::Driver);
    let api = acct.cycles(Module::Api);
    assert!(tcp > driver, "TCP dominates driver cycles (Table 1 shape)");
    assert!(api > driver, "sockets exceed driver cycles (Table 1 shape)");
    // Per request: roughly 0.8-1.3 kc of TCP per the calibration (the echo
    // server sees 1 data RX + ack gen + tx cmd + tx seg + 1 ack RX).
    let per_req = tcp as f64 / 1000.0;
    assert!(
        (600.0..1600.0).contains(&per_req),
        "TCP cycles/request {per_req}"
    );
}
