//! Property tests for the fast-path rate bucket.
//!
//! The bucket is the mechanism that turns the slow path's rate decisions
//! into per-segment admission on the fast path; two historical bug
//! classes motivate these properties. First, an early version discarded
//! fractional credit on every refill, so frequent polling at low rates
//! starved flows completely (credit conservation, tested from both
//! sides). Second, `time_until` must be sound: sleeping exactly the
//! returned duration must yield the credit, or the TX pacing timer spins.

use proptest::prelude::*;
use tas::flow::RateBucket;
use tas_sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Over any poll/consume schedule the bucket never issues more than
    /// its initial credit plus rate x elapsed-time: credit is never
    /// manufactured, no matter how erratically the fast path polls.
    #[test]
    fn bucket_never_over_issues(
        rate_bps in 1_000u64..100_000_000_000,
        burst in 1u64..1_000_000,
        steps in proptest::collection::vec((1u64..5_000_000u64, 1u64..100_000u64), 1..60),
    ) {
        let t0 = SimTime::from_us(5);
        let mut b = RateBucket::limited(rate_bps, burst, t0);
        let initial = b.tokens;
        let mut now = t0;
        let mut issued: u128 = 0;
        for (dt_ns, want) in steps {
            now += SimTime::from_ps(dt_ns * 1_000);
            b.refill(now);
            prop_assert!(b.tokens <= burst, "tokens {} exceed burst {burst}", b.tokens);
            if b.tokens >= want {
                b.consume(want);
                issued += want as u128;
            }
        }
        let elapsed_ps = (now - t0).as_ps() as u128;
        let earned = (rate_bps as u128 / 8) * elapsed_ps / 1_000_000_000_000;
        prop_assert!(
            issued <= initial as u128 + earned,
            "issued {issued} > initial {initial} + earned {earned}"
        );
    }

    /// Polling arbitrarily often never loses credit: an idle bucket ends
    /// with all the bytes the elapsed time paid for (to within the one
    /// sub-byte fraction still accruing), regardless of the poll schedule.
    /// This is the floor-leak regression test.
    #[test]
    fn bucket_never_starves_under_frequent_polls(
        rate_bps in 1_000u64..1_000_000_000,
        polls in proptest::collection::vec(1u64..200_000u64, 1..80),
    ) {
        let t0 = SimTime::ZERO;
        let mut b = RateBucket::limited(rate_bps, u64::MAX / 2, t0);
        b.tokens = 0;
        let mut now = t0;
        for dt_ns in polls {
            now += SimTime::from_ps(dt_ns * 1_000);
            b.refill(now);
        }
        b.refill(now);
        let elapsed_ps = now.as_ps() as u128;
        let earned = ((rate_bps as u128 / 8) * elapsed_ps / 1_000_000_000_000) as u64;
        prop_assert!(
            b.tokens + 1 >= earned,
            "leaked credit: have {} of {earned} earned bytes",
            b.tokens
        );
        prop_assert!(b.tokens <= earned + 1, "manufactured credit");
    }

    /// `time_until(n)` is sound and tight: refilling at exactly the
    /// returned deadline yields at least `n` tokens, and (for a non-zero
    /// wait) refilling one full byte-time earlier would not have.
    #[test]
    fn bucket_time_until_is_sound(
        rate_bps in 8_000u64..10_000_000_000,
        tokens in 0u64..10_000,
        n in 1u64..20_000,
    ) {
        let t0 = SimTime::from_us(1);
        let mut b = RateBucket::limited(rate_bps, 1 << 40, t0);
        b.tokens = tokens;
        let wait = b.time_until(n, t0);
        prop_assert!(wait < SimTime::MAX);
        b.refill(t0 + wait);
        prop_assert!(
            b.tokens >= n,
            "after waiting {wait:?}: {} tokens < requested {n}",
            b.tokens
        );
        if tokens >= n {
            prop_assert_eq!(wait, SimTime::ZERO, "credit was already available");
        }
    }

    /// Changing the rate mid-flight preserves accumulated credit and
    /// respects the new rate from that instant on. The recorded seed in
    /// `flow_props.proptest-regressions` shrank into this property; the
    /// exact shrunk case is replayed by
    /// [`regression_rate_change_seed_8000_53112_7394`] below.
    #[test]
    fn bucket_rate_change_preserves_credit(
        rate1 in 8_000u64..1_000_000_000,
        rate2 in 8_000u64..1_000_000_000,
        idle_us in 1u64..10_000,
    ) {
        let t0 = SimTime::ZERO;
        let mut b = RateBucket::limited(rate1, u64::MAX / 2, t0);
        b.tokens = 0;
        let t1 = t0 + SimTime::from_us(idle_us);
        b.set_rate_bps(rate2, t1);
        let earned1 = ((rate1 as u128 / 8) * t1.as_ps() as u128 / 1_000_000_000_000) as u64;
        prop_assert!(b.tokens + 1 >= earned1, "rate change dropped earned credit");
        // From t1, credit accrues at rate2.
        let t2 = t1 + SimTime::from_ms(10);
        let before = b.tokens;
        b.refill(t2);
        let earned2 =
            ((rate2 as u128 / 8) * (t2 - t1).as_ps() as u128 / 1_000_000_000_000) as u64;
        prop_assert!(b.tokens + 2 >= before + earned2, "new rate under-credits");
        prop_assert!(b.tokens <= before + earned2 + 2, "new rate over-credits");
    }
}

/// Replays the shrunk case recorded in `flow_props.proptest-regressions`
/// (`cc 3201b3e5… # shrinks to rate1 = 8000, rate2 = 53112, idle_us =
/// 7394`) against `bucket_rate_change_preserves_credit`'s assertions.
///
/// The failure class was the `set_rate_bps` credit-rescaling path: the
/// sub-byte time remainder accruing at the old rate must be re-priced so
/// its byte value carries over across the rate change (at 8 kbit/s one
/// byte takes a full millisecond, so a dropped or re-priced fraction is
/// a visible whole-byte error at the new rate). The current
/// implementation rescales the remainder explicitly; this test pins the
/// recorded counterexample so the path can never regress silently.
#[test]
fn regression_rate_change_seed_8000_53112_7394() {
    let (rate1, rate2, idle_us) = (8_000u64, 53_112u64, 7_394u64);
    let t0 = SimTime::ZERO;
    let mut b = RateBucket::limited(rate1, u64::MAX / 2, t0);
    b.tokens = 0;
    let t1 = t0 + SimTime::from_us(idle_us);
    b.set_rate_bps(rate2, t1);
    let earned1 = ((rate1 as u128 / 8) * t1.as_ps() as u128 / 1_000_000_000_000) as u64;
    assert!(
        b.tokens + 1 >= earned1,
        "rate change dropped earned credit: have {} of {earned1}",
        b.tokens
    );
    let t2 = t1 + SimTime::from_ms(10);
    let before = b.tokens;
    b.refill(t2);
    let earned2 = ((rate2 as u128 / 8) * (t2 - t1).as_ps() as u128 / 1_000_000_000_000) as u64;
    assert!(
        b.tokens + 2 >= before + earned2,
        "new rate under-credits: {} + 2 < {before} + {earned2}",
        b.tokens
    );
    assert!(
        b.tokens <= before + earned2 + 2,
        "new rate over-credits: {} > {before} + {earned2} + 2",
        b.tokens
    );
}

/// The same seed values swept across every poll cadence from 1 µs to
/// 1 ms: however often the fast path polls between the rate change and
/// the measurement, the carried remainder stays within one byte.
#[test]
fn regression_rate_change_seed_is_poll_schedule_independent() {
    for poll_us in [1u64, 7, 100, 1_000] {
        let t0 = SimTime::ZERO;
        let mut b = RateBucket::limited(8_000, u64::MAX / 2, t0);
        b.tokens = 0;
        let t1 = t0 + SimTime::from_us(7_394);
        b.set_rate_bps(53_112, t1);
        let after_change = b.tokens;
        let t2 = t1 + SimTime::from_ms(10);
        let mut now = t1;
        while now < t2 {
            now = (now + SimTime::from_us(poll_us)).min(t2);
            b.refill(now);
        }
        let earned2 = ((53_112u128 / 8) * (t2 - t1).as_ps() as u128 / 1_000_000_000_000) as u64;
        assert!(
            b.tokens + 2 >= after_change + earned2 && b.tokens <= after_change + earned2 + 2,
            "poll cadence {poll_us}us perturbed credit: {} vs {} + {earned2}",
            b.tokens,
            after_change
        );
    }
}
