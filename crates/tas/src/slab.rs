//! Packet-path storage primitives: a slab arena and a 4-tuple index.
//!
//! The fast path touches the flow table for every packet, so both halves
//! of the table are built for that loop:
//!
//! * [`Slab`] keeps flow state in a dense `Vec` addressed by a stable
//!   `u32` slot id. Freed slots go on a LIFO free list and are recycled
//!   in deterministic order, so ids are reproducible run-to-run and the
//!   backing storage never shifts an entry (ids stay valid across
//!   unrelated inserts/removes).
//! * [`FlowIndex`] maps a [`FlowKey`] 4-tuple to its slot id with FNV-1a
//!   hashing and open addressing (linear probing, backward-shift
//!   deletion). Unlike `HashMap`'s SipHash, FNV-1a over the 12 key bytes
//!   is a handful of multiplies — this is the per-packet lookup and the
//!   simulated NIC in the paper does it in hardware (§3.1's flow-group
//!   steering); a DoS-resistant hash would be pure overhead here.
//!
//! Neither structure allocates on lookup, and the index only allocates on
//! growth (doubling at 3/4 load).

use tas_proto::FlowKey;

/// A dense arena with stable `u32` ids and LIFO slot recycling.
#[derive(Debug)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty slab with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts a value, returning its slot id. The most recently freed
    /// slot is reused first (deterministic id assignment).
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(id) => {
                if let Some(slot) = self.slots.get_mut(id as usize) {
                    *slot = Some(value);
                }
                id
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Accesses an entry by id.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.slots.get(id as usize).and_then(Option::as_ref)
    }

    /// Mutably accesses an entry by id.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.slots.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Removes an entry, returning it. The slot goes on the free list.
    pub fn remove(&mut self, id: u32) -> Option<T> {
        let value = self.slots.get_mut(id as usize).and_then(Option::take)?;
        self.free.push(id);
        Some(value)
    }

    /// Iterates over (id, value) pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }

    /// Iterates over (id, value) pairs in slot order, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.as_mut().map(|v| (i as u32, v)))
    }
}

/// Sentinel for an empty [`FlowIndex`] bucket.
const VACANT: u32 = u32::MAX;

/// Initial bucket count (power of two).
const INDEX_MIN_BUCKETS: usize = 16;

/// FNV-1a 64-bit offset basis / prime.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn hash_key(key: &FlowKey) -> u64 {
    let mut h = FNV_OFFSET;
    let mut step = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for b in key.local_ip.octets() {
        step(b);
    }
    for b in key.local_port.to_be_bytes() {
        step(b);
    }
    for b in key.remote_ip.octets() {
        step(b);
    }
    for b in key.remote_port.to_be_bytes() {
        step(b);
    }
    h
}

fn placeholder_key() -> FlowKey {
    FlowKey::new(
        std::net::Ipv4Addr::UNSPECIFIED,
        0,
        std::net::Ipv4Addr::UNSPECIFIED,
        0,
    )
}

/// An open-addressing 4-tuple → flow-id map for the per-packet lookup.
///
/// Parallel arrays (`keys`, `fids`) with power-of-two capacity; a bucket
/// is live iff its fid is not [`VACANT`]. Linear probing keeps clusters
/// cache-resident; deletion uses backward shifting so no tombstones
/// accumulate and lookups never degrade over connection churn.
#[derive(Debug)]
pub struct FlowIndex {
    keys: Vec<FlowKey>,
    fids: Vec<u32>,
    mask: usize,
    len: usize,
}

impl Default for FlowIndex {
    fn default() -> Self {
        FlowIndex {
            keys: vec![placeholder_key(); INDEX_MIN_BUCKETS],
            fids: vec![VACANT; INDEX_MIN_BUCKETS],
            mask: INDEX_MIN_BUCKETS - 1,
            len: 0,
        }
    }
}

impl FlowIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are installed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket_of(&self, key: &FlowKey) -> usize {
        (hash_key(key) as usize) & self.mask
    }

    /// Finds the bucket holding `key`, if installed.
    fn find(&self, key: &FlowKey) -> Option<usize> {
        let mut i = self.bucket_of(key);
        loop {
            let fid = *self.fids.get(i)?;
            if fid == VACANT {
                return None;
            }
            if self.keys.get(i).is_some_and(|k| k == key) {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up the flow id for `key`.
    pub fn get(&self, key: &FlowKey) -> Option<u32> {
        let i = self.find(key)?;
        self.fids.get(i).copied()
    }

    /// Installs `key → fid`, returning the previous id if the key was
    /// already present (overwritten).
    pub fn insert(&mut self, key: FlowKey, fid: u32) -> Option<u32> {
        debug_assert_ne!(fid, VACANT, "fid u32::MAX is reserved");
        if (self.len + 1) * 4 > (self.mask + 1) * 3 {
            self.grow();
        }
        let mut i = self.bucket_of(&key);
        loop {
            let Some(slot_fid) = self.fids.get_mut(i) else {
                debug_assert!(false, "probe ran off the bucket array");
                return None;
            };
            if *slot_fid == VACANT {
                *slot_fid = fid;
                if let Some(k) = self.keys.get_mut(i) {
                    *k = key;
                }
                self.len += 1;
                return None;
            }
            if self.keys.get(i).is_some_and(|k| *k == key) {
                let prev = *slot_fid;
                *slot_fid = fid;
                return Some(prev);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its flow id. Backward-shifts the probe
    /// cluster so later lookups stay tombstone-free.
    pub fn remove(&mut self, key: &FlowKey) -> Option<u32> {
        let mut hole = self.find(key)?;
        let removed = self.fids.get(hole).copied()?;
        self.len -= 1;
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            let Some(&fid) = self.fids.get(j) else { break };
            if fid == VACANT {
                break;
            }
            let home = self
                .keys
                .get(j)
                .map(|k| self.bucket_of(k))
                .unwrap_or(j);
            // Entry at j may slide into the hole only if its home bucket
            // is cyclically at-or-before the hole (otherwise the shift
            // would move it ahead of its probe start).
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                if let (Some(&k), Some(&f)) = (self.keys.get(j), self.fids.get(j)) {
                    if let Some(kh) = self.keys.get_mut(hole) {
                        *kh = k;
                    }
                    if let Some(fh) = self.fids.get_mut(hole) {
                        *fh = f;
                    }
                }
                hole = j;
            }
        }
        if let Some(f) = self.fids.get_mut(hole) {
            *f = VACANT;
        }
        Some(removed)
    }

    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![placeholder_key(); new_cap]);
        let old_fids = std::mem::replace(&mut self.fids, vec![VACANT; new_cap]);
        self.mask = new_cap - 1;
        self.len = 0;
        for (k, f) in old_keys.into_iter().zip(old_fids) {
            if f != VACANT {
                self.insert(k, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn key(port: u16) -> FlowKey {
        FlowKey::new(
            Ipv4Addr::new(10, 0, 0, 1),
            80,
            Ipv4Addr::new(10, 0, 0, 2),
            port,
        )
    }

    #[test]
    fn slab_insert_get_remove_recycles_lifo() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).map(String::as_str), Some("a"));
        assert_eq!(s.remove(a).as_deref(), Some("a"));
        assert_eq!(s.get(a), None);
        let c = s.insert("c".into());
        assert_eq!(c, a, "most recently freed slot is reused first");
        assert_eq!(s.remove(b).as_deref(), Some("b"));
        assert_eq!(s.remove(b), None, "double remove is a no-op");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slab_iter_visits_slot_order() {
        let mut s: Slab<u32> = Slab::new();
        let ids: Vec<u32> = (0..5).map(|v| s.insert(v * 10)).collect();
        s.remove(ids[2]);
        let seen: Vec<(u32, u32)> = s.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(seen, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
        for (_, v) in s.iter_mut() {
            *v += 1;
        }
        assert_eq!(s.get(ids[4]), Some(&41));
    }

    #[test]
    fn index_insert_get_remove() {
        let mut ix = FlowIndex::new();
        assert!(ix.is_empty());
        assert_eq!(ix.insert(key(1), 10), None);
        assert_eq!(ix.insert(key(2), 20), None);
        assert_eq!(ix.get(&key(1)), Some(10));
        assert_eq!(ix.get(&key(2)), Some(20));
        assert_eq!(ix.get(&key(3)), None);
        assert_eq!(ix.insert(key(1), 11), Some(10), "reinsert overwrites");
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.remove(&key(1)), Some(11));
        assert_eq!(ix.get(&key(1)), None);
        assert_eq!(ix.remove(&key(1)), None);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn index_survives_growth_and_churn() {
        let mut ix = FlowIndex::new();
        for p in 0..1000u16 {
            ix.insert(key(p), p as u32);
        }
        assert_eq!(ix.len(), 1000);
        for p in 0..1000u16 {
            assert_eq!(ix.get(&key(p)), Some(p as u32));
        }
        // Remove every other key, then verify the survivors (exercises
        // backward-shift deletion through long probe clusters).
        for p in (0..1000u16).step_by(2) {
            assert_eq!(ix.remove(&key(p)), Some(p as u32));
        }
        assert_eq!(ix.len(), 500);
        for p in 0..1000u16 {
            let want = if p % 2 == 0 { None } else { Some(p as u32) };
            assert_eq!(ix.get(&key(p)), want);
        }
        // Refill the holes; lookups must still be exact.
        for p in (0..1000u16).step_by(2) {
            ix.insert(key(p), 100_000 + p as u32);
        }
        for p in (0..1000u16).step_by(2) {
            assert_eq!(ix.get(&key(p)), Some(100_000 + p as u32));
        }
    }

    #[test]
    fn index_matches_reference_map_under_random_ops() {
        // Differential test against BTreeMap with a deterministic LCG.
        use std::collections::BTreeMap;
        let mut ix = FlowIndex::new();
        let mut reference: BTreeMap<u16, u32> = BTreeMap::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for step in 0..20_000u32 {
            let p = (next() % 512) as u16;
            match next() % 3 {
                0 | 1 => {
                    let prev = ix.insert(key(p), step);
                    assert_eq!(prev, reference.insert(p, step));
                }
                _ => {
                    assert_eq!(ix.remove(&key(p)), reference.remove(&p));
                }
            }
            if step % 1024 == 0 {
                assert_eq!(ix.len(), reference.len());
            }
        }
        for p in 0..512u16 {
            assert_eq!(ix.get(&key(p)), reference.get(&p).copied());
        }
    }
}
