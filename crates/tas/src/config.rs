//! TAS configuration and fast-path cost constants.

use tas_sim::SimTime;

/// Which application API the user-space stack presents (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApiKind {
    /// POSIX sockets emulation ("TAS SO" in Fig. 8).
    Sockets,
    /// The IX-like low-level context-queue API ("TAS LL").
    LowLevel,
}

/// Congestion-control policy run by the slow path (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcAlgo {
    /// Rate-based DCTCP (the paper's default: control law applied to rates).
    DctcpRate,
    /// TIMELY (RTT-gradient), adapted for TCP with slow start.
    Timely,
    /// No enforcement: buckets unlimited, flow control by TCP window only.
    /// Used by CPU-bound microbenchmarks where the network is never the
    /// bottleneck (documented in DESIGN.md).
    None,
}

/// Per-operation cycle/instruction costs of the TAS fast path and libTAS,
/// calibrated so the key-value workload reproduces the TAS columns of the
/// paper's Tables 1–2 (≈0.09 kc driver, 0.81 kc TCP, 0.62 kc sockets per
/// request at 3.9 ki and CPI 0.66).
#[derive(Clone, Copy, Debug)]
pub struct TasCosts {
    /// Driver cost per received packet (poll-mode RX descriptor handling).
    pub drv_rx: u64,
    /// Driver cost per transmitted packet.
    pub drv_tx: u64,
    /// Fast-path TCP processing per received data segment.
    pub tcp_rx_data: u64,
    /// Fast-path TCP processing per received pure ACK.
    pub tcp_rx_ack: u64,
    /// Fast-path ACK generation.
    pub tcp_ack_gen: u64,
    /// Fast-path segment build + send per transmitted data segment.
    pub tcp_tx_seg: u64,
    /// Fast-path handling of one context-queue TX command.
    pub tcp_tx_cmd: u64,
    /// Sockets API: epoll-style poll returning one event.
    pub so_poll: u64,
    /// Sockets API: one recv() including copy-out.
    pub so_recv: u64,
    /// Sockets API: one send() including copy-in.
    pub so_send: u64,
    /// Low-level API: poll/recv/send each (context-queue direct).
    pub ll_op: u64,
    /// Slow-path processing per connection-control leg (SYN, SYN-ACK,
    /// final ACK, FIN, ...): port allocation, state install, queueing.
    pub sp_conn_op: u64,
    /// App-side cost per connection-control call (connect/accept/close
    /// through the slow-path context queue).
    pub so_conn_op: u64,
    /// Fast-path handling of an RX-bump (read-pointer update) command.
    pub rx_bump: u64,
    /// Instructions per cycle the fast path retires (TAS measures 0.66 CPI
    /// → ~1.5 IPC); used to derive instruction counts from cycle charges.
    pub ipc_times_100: u64,
    /// Cycles to wake a blocked fast-path core (kernel eventfd notify).
    pub wake_cycles: u64,
}

impl Default for TasCosts {
    fn default() -> Self {
        TasCosts {
            drv_rx: 35,
            drv_tx: 28,
            tcp_rx_data: 255,
            tcp_rx_ack: 150,
            tcp_ack_gen: 95,
            tcp_tx_seg: 225,
            tcp_tx_cmd: 85,
            so_poll: 150,
            so_recv: 200,
            so_send: 270,
            ll_op: 56,
            sp_conn_op: 900,
            so_conn_op: 450,
            rx_bump: 40,
            ipc_times_100: 152,
            wake_cycles: 6_000,
        }
    }
}

/// Configuration of a TAS host.
#[derive(Clone, Debug)]
pub struct TasConfig {
    /// Clock frequency of all cores (the paper's server: 2.1 GHz).
    pub freq_hz: u64,
    /// Maximum number of fast-path cores (threads are created for all of
    /// them; idle ones block).
    pub max_fp_cores: usize,
    /// Initially active fast-path cores.
    pub initial_fp_cores: usize,
    /// Number of application cores (= app contexts).
    pub app_cores: usize,
    /// Application API flavour.
    pub api: ApiKind,
    /// Per-flow receive payload buffer size (fixed at connection setup —
    /// a documented TAS limitation, §4.1).
    pub rx_buf: usize,
    /// Per-flow transmit payload buffer size.
    pub tx_buf: usize,
    /// MSS for segmentation.
    pub mss: u32,
    /// Congestion-control policy.
    pub cc: CcAlgo,
    /// Slow-path control-loop interval τ (the paper defaults to 2 RTTs;
    /// Fig. 11 sweeps it).
    pub control_interval: SimTime,
    /// Control intervals with stalled unacked data before the slow path
    /// triggers a retransmission (paper default: 2).
    pub stall_intervals_for_rexmit: u32,
    /// Fast-path cores block after this long without packets (§3.4).
    pub block_after: SimTime,
    /// Aggregate idle-core threshold to remove a core.
    pub idle_remove_threshold: f64,
    /// Aggregate idle-core threshold to add a core.
    pub idle_add_threshold: f64,
    /// Enable the proportionality controller (off = fixed core count, as
    /// in the fixed-allocation benchmarks).
    pub proportional: bool,
    /// Additive-increase step for rate-based DCTCP (paper: 10 Mbps).
    pub ai_rate_bps: u64,
    /// Initial flow rate out of slow start.
    pub initial_rate_bps: u64,
    /// Bound on fast-path dispatch backlog per core; packets arriving when
    /// the core is further behind than this are dropped (models a finite
    /// RX descriptor ring).
    pub max_core_backlog: SimTime,
    /// Context queue capacity in descriptors.
    pub ctx_queue_cap: usize,
    /// Track one out-of-order interval in the fast path (§3.1). Disabled
    /// = pure go-back-N ("TAS simple recovery" in Fig. 7).
    pub ooo_rx: bool,
    /// Cost constants.
    pub costs: TasCosts,
    /// Effective per-core cache available for fast-path flow state
    /// (≈2 MB L2 + L3 share on the paper's server).
    pub cache_per_core: u64,
    /// Cache lines of flow state touched per request (102-byte state = 2).
    pub cache_lines_per_req: u64,
    /// Stall cycles per missed line.
    pub cache_miss_penalty: f64,
}

impl Default for TasConfig {
    fn default() -> Self {
        TasConfig {
            freq_hz: 2_100_000_000,
            max_fp_cores: 4,
            initial_fp_cores: 1,
            app_cores: 1,
            api: ApiKind::Sockets,
            rx_buf: 16 * 1024,
            tx_buf: 16 * 1024,
            mss: 1448,
            cc: CcAlgo::DctcpRate,
            control_interval: SimTime::from_us(200),
            stall_intervals_for_rexmit: 2,
            block_after: SimTime::from_ms(10),
            idle_remove_threshold: 1.25,
            idle_add_threshold: 0.2,
            proportional: false,
            ai_rate_bps: 10_000_000,
            initial_rate_bps: 1_000_000_000,
            max_core_backlog: SimTime::from_us(500),
            ctx_queue_cap: 1024,
            ooo_rx: true,
            costs: TasCosts::default(),
            cache_per_core: 2 << 20,
            cache_lines_per_req: 2,
            cache_miss_penalty: 110.0,
        }
    }
}

impl TasConfig {
    /// A configuration for CPU-bound RPC microbenchmarks: fixed fast-path
    /// cores, no rate enforcement, small per-flow buffers.
    pub fn rpc_bench(fp_cores: usize, app_cores: usize) -> Self {
        TasConfig {
            max_fp_cores: fp_cores,
            initial_fp_cores: fp_cores,
            app_cores,
            cc: CcAlgo::None,
            rx_buf: 4096,
            tx_buf: 4096,
            ..TasConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_table1_tas_column() {
        // Per KV request the fast path sees: 1 data RX, 1 pure-ACK RX,
        // 1 ACK gen, 1 TX command, 1 data TX (+2 driver ops).
        let c = TasCosts::default();
        let driver = c.drv_rx * 2 + c.drv_tx * 2;
        let tcp = c.tcp_rx_data + c.tcp_rx_ack + c.tcp_ack_gen + c.tcp_tx_cmd + c.tcp_tx_seg;
        let sockets = c.so_poll + c.so_recv + c.so_send;
        assert!(
            (80..=140).contains(&driver),
            "driver {driver} ~ 0.09-0.13 kc"
        );
        assert!((750..=900).contains(&tcp), "tcp {tcp} ~ 0.81 kc");
        assert!(
            (580..=680).contains(&sockets),
            "sockets {sockets} ~ 0.62 kc"
        );
    }

    #[test]
    fn ll_api_is_cheaper_than_sockets() {
        let c = TasCosts::default();
        assert!(c.ll_op * 3 < (c.so_poll + c.so_recv + c.so_send) / 2);
    }

    #[test]
    fn default_config_consistent() {
        let c = TasConfig::default();
        assert!(c.initial_fp_cores <= c.max_fp_cores);
        assert!(c.idle_add_threshold < c.idle_remove_threshold);
        let r = TasConfig::rpc_bench(2, 3);
        assert_eq!(r.initial_fp_cores, 2);
        assert_eq!(r.app_cores, 3);
        assert_eq!(r.cc, CcAlgo::None);
    }
}
