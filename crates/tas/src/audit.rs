//! Per-flow invariant auditing for the fast path and slow path.
//!
//! In debug/test builds (and in release builds with the `audit` feature),
//! the host re-checks structural invariants of every installed flow after
//! each fast-path and slow-path operation: sequence-window sanity,
//! [`ByteRing`](tas_shm::ByteRing) start/end/capacity accounting,
//! rate-bucket credit conservation, single-out-of-order-interval
//! consistency, and timer/flow-table agreement. A violation panics with
//! the flow id and the failed invariant, so fuzzing and e2e runs under
//! fault injection turn silent state corruption into immediate, located
//! failures.
//!
//! The hook sites compile away entirely otherwise
//! (`#[cfg(any(test, debug_assertions, feature = "audit"))]`), so the
//! release fast-path cost is unchanged.

use crate::fastpath::FastPath;
use crate::flow::FlowState;
use std::sync::atomic::{AtomicU64, Ordering};
use tas_sim::SimTime;

/// Process-wide count of audited operations — lets tests assert the
/// auditor was actually live rather than compiled out.
static CHECKS: AtomicU64 = AtomicU64::new(0);

/// Number of audit passes performed so far in this process.
pub fn checks_performed() -> u64 {
    CHECKS.load(Ordering::Relaxed)
}

/// True when audit hooks are compiled in.
pub const fn enabled() -> bool {
    cfg!(any(test, debug_assertions, feature = "audit"))
}

macro_rules! audit_assert {
    ($cond:expr, $fid:expr, $($msg:tt)+) => {
        assert!($cond, "audit violation (flow {}): {}", $fid, format_args!($($msg)+));
    };
}

/// Checks one flow's invariants. `fid` labels the failure message.
pub fn check_flow(fid: u32, f: &FlowState) {
    // ByteRing accounting: offsets and occupancy must agree with the
    // capacity on both payload buffers.
    for (name, ring) in [("rx", &f.rcv.rx), ("tx", &f.snd.tx)] {
        audit_assert!(
            ring.len() + ring.free() == ring.capacity(),
            fid,
            "{name} ring len {} + free {} != capacity {}",
            ring.len(),
            ring.free(),
            ring.capacity()
        );
        audit_assert!(
            ring.end_offset() - ring.start_offset() == ring.len() as u64,
            fid,
            "{name} ring offsets [{}, {}) disagree with len {}",
            ring.start_offset(),
            ring.end_offset(),
            ring.len()
        );
    }
    // Sequence-window sanity: sent-but-unacked bytes live inside the
    // buffered unacked window, and stay far below the 2^31 wraparound
    // horizon that seq comparison arithmetic needs.
    audit_assert!(
        f.snd.tx_sent <= f.snd.tx.len() as u64,
        fid,
        "tx_sent {} exceeds buffered unacked bytes {}",
        f.snd.tx_sent,
        f.snd.tx.len()
    );
    audit_assert!(
        f.snd.tx_sent < 1 << 31,
        fid,
        "tx_sent {} crosses the sequence-comparison horizon",
        f.snd.tx_sent
    );
    audit_assert!(
        f.snd.max_sent_off >= f.nxt_off(),
        fid,
        "max_sent_off {} behind next-to-send offset {}",
        f.snd.max_sent_off,
        f.nxt_off()
    );
    // Duplicate-ACK counter: fast recovery resets at 3, so the counter
    // can never be observed above it between operations.
    audit_assert!(f.snd.dupack_cnt <= 3, fid, "dupack_cnt {} ran away", f.snd.dupack_cnt);
    // Single out-of-order interval: when tracked, it must sit strictly
    // beyond the in-order frontier (a closed gap merges immediately) and
    // within the receive-buffer horizon.
    if f.rcv.ooo_len > 0 {
        audit_assert!(
            f.rcv.ooo_start > f.rcv.rx.end_offset(),
            fid,
            "ooo interval start {} not beyond in-order frontier {}",
            f.rcv.ooo_start,
            f.rcv.rx.end_offset()
        );
        audit_assert!(
            f.rcv.ooo_start + f.rcv.ooo_len as u64 <= f.rcv.rx.start_offset() + f.rcv.rx.capacity() as u64,
            fid,
            "ooo interval [{}, {}) exceeds rx horizon {}",
            f.rcv.ooo_start,
            f.rcv.ooo_start + f.rcv.ooo_len as u64,
            f.rcv.rx.start_offset() + f.rcv.rx.capacity() as u64
        );
    }
    // Rate-bucket credit conservation: credit never exceeds the burst
    // cap, whatever sequence of refill/set_rate_bps/consume ran.
    if !f.cc.bucket.is_unlimited() {
        audit_assert!(
            f.cc.bucket.tokens <= f.cc.bucket.burst,
            fid,
            "rate bucket tokens {} exceed burst {}",
            f.cc.bucket.tokens,
            f.cc.bucket.burst
        );
    }
}

/// Audits the whole fast path after an operation: every flow's invariants,
/// flow-table index/slot agreement, and staged pacing timers referencing
/// live flows that actually armed them.
///
/// Staged timer *deadlines* are deliberately not compared against `now`:
/// the host clamps them forward at flush time (`at.max(end)`), so a
/// deadline behind the core clock is legitimate.
pub fn check_fastpath(fp: &FastPath, now: SimTime) {
    let _ = now;
    CHECKS.fetch_add(1, Ordering::Relaxed);
    let mut seen = 0usize;
    for (fid, flow) in fp.flows.iter() {
        check_flow(fid, flow);
        // Table agreement: the 4-tuple index must point back at this slot.
        audit_assert!(
            fp.flows.lookup(&flow.conn.key) == Some(fid),
            fid,
            "flow-table index diverged for key {}",
            flow.conn.key
        );
        seen += 1;
    }
    assert!(
        seen == fp.flows.len(),
        "audit violation: flow table len {} but {} occupied slots",
        fp.flows.len(),
        seen
    );
    // Timer/flow-table agreement: staged pacing timers must reference
    // installed flows that have their timer flag set, at a sane deadline.
    for &(fid, at) in &fp.out.tx_timers {
        let Some(flow) = fp.flows.get(fid) else {
            panic!("audit violation: pacing timer staged for unknown flow {fid}");
        };
        audit_assert!(
            flow.snd.tx_timer_armed,
            fid,
            "pacing timer staged at {at:?} but tx_timer_armed is clear"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{
        FlowTable, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
    };
    use std::net::Ipv4Addr;
    use tas_proto::FlowKey;
    use tas_shm::ByteRing;

    fn flow(port: u16) -> FlowState {
        FlowState {
            conn: FpConnMgmt::new(
                0,
                0,
                FlowKey::new(
                    Ipv4Addr::new(10, 0, 0, 1),
                    80,
                    Ipv4Addr::new(10, 0, 0, 2),
                    port,
                ),
                tas_proto::MacAddr::for_host(2),
                0,
            ),
            snd: FpSendRel::new(ByteRing::new(1024), 1),
            rcv: FpRecvRel::new(ByteRing::new(1024), 2),
            fc: FpFlowCtrl::new(1024, 0),
            cc: FpCongCtrl::new(RateBucket::unlimited()),
        }
    }

    #[test]
    fn healthy_flow_passes() {
        let f = flow(1);
        check_flow(0, &f);
        assert!(enabled());
    }

    #[test]
    #[should_panic(expected = "tx_sent")]
    fn tx_sent_beyond_buffer_caught() {
        let mut f = flow(1);
        f.snd.tx_sent = 10; // Nothing buffered.
        check_flow(0, &f);
    }

    #[test]
    #[should_panic(expected = "ooo interval start")]
    fn ooo_interval_at_frontier_caught() {
        let mut f = flow(1);
        f.rcv.ooo_len = 5;
        f.rcv.ooo_start = f.rcv.rx.end_offset(); // No gap: should have merged.
        check_flow(0, &f);
    }

    #[test]
    #[should_panic(expected = "exceed burst")]
    fn bucket_over_burst_caught() {
        let mut f = flow(1);
        f.cc.bucket = RateBucket::limited(8_000_000, 1_000, tas_sim::SimTime::ZERO);
        f.cc.bucket.tokens = 2_000;
        check_flow(0, &f);
    }

    #[test]
    fn counter_advances_on_fastpath_check() {
        let mut table = FlowTable::new();
        table.insert(flow(9));
        let fp = {
            let mut fp = FastPath::new(
                Ipv4Addr::new(10, 0, 0, 1),
                tas_proto::MacAddr::for_host(1),
                1448,
                crate::config::TasCosts::default(),
            );
            fp.flows = table;
            fp
        };
        let before = checks_performed();
        check_fastpath(&fp, tas_sim::SimTime::ZERO);
        assert!(checks_performed() > before);
    }
}
