//! TAS: TCP Acceleration as an OS Service — the paper's contribution.
//!
//! TAS splits TCP processing into three components connected purely by
//! shared-memory queues (paper §3):
//!
//! * **Fast path** ([`fastpath`]): common-case RX/TX on dedicated cores.
//!   Holds exactly the per-flow state of the paper's Table 3 ([`flow`]),
//!   deposits payload directly into per-flow user-space receive buffers,
//!   generates ACKs (with DCTCP-accurate ECN echo and timestamps), enforces
//!   slow-path-configured rate limits via per-flow buckets, segments
//!   transmit data, and handles exactly two exceptions inline: duplicate-ACK
//!   fast recovery and one tracked out-of-order interval. Everything else
//!   is forwarded to the slow path.
//! * **Slow path** ([`slowpath`]): connection control (handshakes, port
//!   allocation, neighbour resolution), congestion-control policy (rate-
//!   based DCTCP and TIMELY, [`cc`]), retransmission-timeout detection, and
//!   the workload-proportionality controller that grows and shrinks the set
//!   of fast-path cores (§3.4: add a core below 0.2 aggregate idle, remove
//!   above 1.25, block idle cores after 10 ms).
//! * **libTAS** (inside [`host`]): the untrusted per-application user-space
//!   stack offering POSIX-style sockets or the low-level context-queue API,
//!   implemented over per-flow payload rings and context descriptor queues.
//!
//! [`host::TasHost`] glues the three onto a simulated machine (NIC, fast
//! path cores, app cores) as one network agent.
// Panic-freedom is a stack invariant: unwrap/expect are denied in
// production code (tests are exempt). Packet-path code degrades
// gracefully via let-else + debug_assert; see tas-lint rule R4.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod audit;
pub mod cc;
pub mod config;
pub mod fastpath;
pub mod flow;
pub mod host;
pub mod slab;
pub mod slowpath;

pub use config::{ApiKind, CcAlgo, TasConfig, TasCosts};
pub use flow::{FlowState, FLOW_STATE_BYTES};
pub use host::TasHost;
