//! The TAS slow path (paper §3.2).
//!
//! Everything with non-constant per-packet cost or policy content lives
//! here: connection control (port allocation, handshakes, teardown, with
//! retry), the congestion-control control loop (rate-based DCTCP or
//! TIMELY, one iteration per flow per control interval), and detection of
//! retransmission timeouts (a flow whose left window edge has not moved
//! for multiple control intervals is told to go-back-N).
//!
//! Like the fast path, the slow path is sans-IO: it stages packets and
//! application events into [`SpOut`]; the host charges the returned cycle
//! costs to the slow-path core and moves staged items.

use crate::cc::{dctcp_rate_iteration, timely_iteration, DctcpRateParams, TimelyParams};
use crate::config::{CcAlgo, TasConfig};
use crate::fastpath::{FastPath, TAS_WSCALE};
use crate::flow::{
    FlowState, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tas_cpusim::{CycleAccount, Module};
use tas_proto::tcp::seq;
use tas_proto::{FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_shm::ByteRing;
use tas_sim::SimTime;

/// Application-facing events produced by the slow path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpAppEvent {
    /// An outgoing connection completed; the flow is installed.
    ConnectDone {
        /// The opaque value given at `connect` (the socket id).
        opaque: u64,
        /// Fast-path flow id.
        fid: u32,
    },
    /// An outgoing connection failed (retries exhausted or RST).
    ConnectFailed {
        /// The opaque value given at `connect`.
        opaque: u64,
    },
    /// An incoming connection completed on a listening port.
    AcceptDone {
        /// The opaque value the host assigned at SYN time.
        opaque: u64,
        /// Fast-path flow id.
        fid: u32,
        /// The listening port.
        port: u16,
        /// The connection 4-tuple.
        key: FlowKey,
    },
    /// The peer closed a connection (FIN received).
    PeerClosed {
        /// Flow id (still installed until the app closes).
        fid: u32,
    },
    /// A locally-initiated close finished; all state is gone.
    CloseDone {
        /// The opaque of the closed connection.
        opaque: u64,
    },
    /// A flow was removed from the fast path (teardown started); the host
    /// must drop its fid mapping before the id is reused.
    Detached {
        /// The opaque of the detaching connection.
        opaque: u64,
        /// The (now invalid) fast-path flow id.
        fid: u32,
    },
}

/// Staged slow-path effects.
#[derive(Debug, Default)]
pub struct SpOut {
    /// Packets to transmit.
    pub packets: Vec<Segment>,
    /// Application events.
    pub events: Vec<SpAppEvent>,
}

/// Slow-path counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpStats {
    /// Connections fully established (either direction).
    pub established: u64,
    /// Connections fully closed.
    pub closed: u64,
    /// Handshake segment retransmissions.
    pub handshake_rexmits: u64,
    /// Retransmissions triggered by the stall detector.
    pub timeout_rexmits: u64,
    /// Exception packets processed.
    pub exceptions: u64,
    /// Exceptions dropped as unmatchable.
    pub dropped: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // TCP state names are canonical.
enum HsState {
    /// SYN sent, awaiting SYN-ACK (local connect).
    SynSent,
    /// SYN received; waiting for the application's accept decision
    /// (modelled as the app-core charge before `accept` is called).
    SynPending,
    /// SYN-ACK sent, awaiting the final ACK (remote connect).
    SynAckSent,
}

/// A connection the slow path is establishing.
#[derive(Clone, Debug)]
struct Handshake {
    state: HsState,
    key: FlowKey,
    peer_mac: MacAddr,
    opaque: u64,
    context: u16,
    iss: u32,
    irs: u32,
    peer_wscale: u8,
    peer_win: u64,
    ts_recent: u32,
    listen_port: u16,
    deadline: SimTime,
    attempts: u32,
}

/// A connection the slow path is tearing down (already removed from the
/// fast path, or peer-initiated).
#[derive(Clone, Debug)]
struct Teardown {
    key: FlowKey,
    peer_mac: MacAddr,
    opaque: u64,
    /// Sequence of our FIN (== snd_nxt at close time).
    fin_seq: u32,
    /// What we acknowledge (peer's nxt, +1 once their FIN is in).
    rcv_ack: u32,
    ts_recent: u32,
    fin_acked: bool,
    peer_fin: bool,
    deadline: SimTime,
    attempts: u32,
}

/// The slow path.
#[derive(Debug)]
pub struct SlowPath {
    local_ip: Ipv4Addr,
    local_mac: MacAddr,
    mss: u32,
    rx_buf: usize,
    tx_buf: usize,
    cc: CcAlgo,
    dctcp: DctcpRateParams,
    timely: TimelyParams,
    control_interval: SimTime,
    stall_intervals_for_rexmit: u32,
    initial_rate_bps: u64,
    // BTreeMap, not HashMap: the control loop iterates these to build
    // retry batches, and packet emission order must not depend on the
    // process's hash seed (runs must reproduce bit-for-bit across runs).
    listeners: BTreeMap<u16, ()>,
    handshakes: BTreeMap<FlowKey, Handshake>,
    teardowns: BTreeMap<FlowKey, Teardown>,
    next_port: u16,
    /// Completion time of the previous control-loop iteration (the loop
    /// self-paces: with many flows an iteration takes longer than the
    /// nominal interval, exactly like the real slow-path thread).
    last_loop: SimTime,
    /// Staged effects.
    pub out: SpOut,
    /// Counters.
    pub stats: SpStats,
}

/// Emits a flight-recorder record at site `"sp"`.
#[cfg(feature = "trace")]
fn trace_sp(t: SimTime, ev: tas_telemetry::TraceEvent) {
    tas_telemetry::emit(|| tas_telemetry::TraceRecord { t, site: "sp", ev });
}

/// Handshake/teardown retry interval (datacenter-scale: a dropped SYN
/// costs a couple of RTT-magnitudes, not a WAN timeout).
const RETRY_AFTER: SimTime = SimTime::from_ms(2);
/// Retry attempts before giving up.
const MAX_ATTEMPTS: u32 = 8;

impl SlowPath {
    /// Creates a slow path for a host.
    pub fn new(local_ip: Ipv4Addr, local_mac: MacAddr, cfg: &TasConfig) -> Self {
        SlowPath {
            local_ip,
            local_mac,
            mss: cfg.mss,
            rx_buf: cfg.rx_buf,
            tx_buf: cfg.tx_buf,
            cc: cfg.cc,
            dctcp: DctcpRateParams {
                ai_bps: cfg.ai_rate_bps,
                ..DctcpRateParams::default()
            },
            timely: TimelyParams::default(),
            control_interval: cfg.control_interval,
            stall_intervals_for_rexmit: cfg.stall_intervals_for_rexmit,
            initial_rate_bps: cfg.initial_rate_bps,
            listeners: BTreeMap::new(),
            handshakes: BTreeMap::new(),
            teardowns: BTreeMap::new(),
            next_port: 32_768,
            last_loop: SimTime::ZERO,
            out: SpOut::default(),
            stats: SpStats::default(),
        }
    }

    fn charge(&self, acct: &mut CycleAccount, cycles: u64) -> u64 {
        // Slow-path work bills as "Other" stack cycles (it runs on its own
        // partially-used core; Table 6 counts it there).
        acct.charge(Module::Other, cycles, cycles);
        #[cfg(feature = "profile")]
        tas_telemetry::profile::charge(cycles);
        cycles
    }

    /// Registers a listening port.
    pub fn listen(&mut self, port: u16) {
        self.listeners.insert(port, ());
    }

    /// Allocates an ephemeral local port.
    pub fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(32_768);
        p
    }

    // ------------------------------------------------------------------
    // Application commands.

    /// Starts an outgoing connection; stages a SYN. `opaque` identifies
    /// the socket; `context` is the app context for the future flow.
    #[allow(clippy::too_many_arguments)] // The handshake tuple is irreducible.
    pub fn connect(
        &mut self,
        now: SimTime,
        peer_ip: Ipv4Addr,
        peer_port: u16,
        peer_mac: MacAddr,
        opaque: u64,
        context: u16,
        iss: u32,
        acct: &mut CycleAccount,
    ) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("connect");
        let cycles = self.charge(acct, 900);
        let local_port = self.alloc_port();
        let key = FlowKey::new(self.local_ip, local_port, peer_ip, peer_port);
        let hs = Handshake {
            state: HsState::SynSent,
            key,
            peer_mac,
            opaque,
            context,
            iss,
            irs: 0,
            peer_wscale: 0,
            peer_win: 0,
            ts_recent: 0,
            listen_port: 0,
            deadline: now + RETRY_AFTER,
            attempts: 0,
        };
        self.send_syn(now, &hs);
        self.handshakes.insert(key, hs);
        cycles
    }

    fn send_syn(&mut self, now: SimTime, hs: &Handshake) {
        let mut h = TcpHeader::new(
            hs.key.local_port,
            hs.key.remote_port,
            hs.iss,
            0,
            TcpFlags::SYN,
        );
        // ECN negotiation (TAS runs DCTCP).
        h.flags |= TcpFlags::ECE | TcpFlags::CWR;
        h.options.mss = Some(self.mss.min(u16::MAX as u32) as u16);
        h.options.wscale = Some(TAS_WSCALE);
        h.options.timestamp = Some((now.as_micros() as u32, 0));
        h.window = self.rx_buf.min(u16::MAX as usize) as u16;
        self.out.packets.push(Segment::tcp(
            self.local_mac,
            hs.peer_mac,
            self.local_ip,
            hs.key.remote_ip,
            h,
            Vec::new(),
            false,
        ));
    }

    fn send_synack(&mut self, now: SimTime, hs: &Handshake) {
        let mut h = TcpHeader::new(
            hs.key.local_port,
            hs.key.remote_port,
            hs.iss,
            hs.irs.wrapping_add(1),
            TcpFlags::SYN | TcpFlags::ACK,
        );
        h.flags |= TcpFlags::ECE; // Accept ECN.
        h.options.mss = Some(self.mss.min(u16::MAX as u32) as u16);
        h.options.wscale = Some(TAS_WSCALE);
        h.options.timestamp = Some((now.as_micros() as u32, hs.ts_recent));
        h.window = self.rx_buf.min(u16::MAX as usize) as u16;
        self.out.packets.push(Segment::tcp(
            self.local_mac,
            hs.peer_mac,
            self.local_ip,
            hs.key.remote_ip,
            h,
            Vec::new(),
            false,
        ));
    }

    /// Builds the established flow state and installs it in the fast path.
    fn install(&mut self, fp: &mut FastPath, hs: &Handshake, now: SimTime) -> u32 {
        let bucket = match self.cc {
            CcAlgo::None => RateBucket::unlimited(),
            _ => RateBucket::limited(
                self.initial_rate_bps,
                self.burst_for(self.initial_rate_bps),
                now,
            ),
        };
        let flow = FlowState {
            conn: FpConnMgmt::new(hs.opaque, hs.context, hs.key, hs.peer_mac, hs.ts_recent),
            snd: FpSendRel::new(ByteRing::new(self.tx_buf), hs.iss),
            rcv: FpRecvRel::new(ByteRing::new(self.rx_buf), hs.irs),
            fc: FpFlowCtrl::new(hs.peer_win, hs.peer_wscale),
            cc: FpCongCtrl::new(bucket),
        };
        self.stats.established += 1;
        #[cfg(feature = "trace")]
        trace_sp(
            now,
            tas_telemetry::TraceEvent::State {
                flow: hs.key,
                from: match hs.state {
                    HsState::SynSent => "syn_sent",
                    _ => "syn_rcvd",
                },
                to: "established",
            },
        );
        fp.install_flow(flow)
    }

    fn burst_for(&self, rate_bps: u64) -> u64 {
        // Credit for one control interval, at least 2 MSS.
        let per_interval = (rate_bps as u128 * self.control_interval.as_ps() as u128
            / 8
            / 1_000_000_000_000) as u64;
        per_interval.max(2 * self.mss as u64)
    }

    /// Application closes a connection. If the flow has drained, teardown
    /// starts immediately; otherwise it is marked and the control loop
    /// picks it up.
    pub fn close(
        &mut self,
        now: SimTime,
        fid: u32,
        fp: &mut FastPath,
        acct: &mut CycleAccount,
    ) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("close");
        let cycles = self.charge(acct, 700);
        let drained = {
            let Some(flow) = fp.flows.get_mut(fid) else {
                return cycles;
            };
            flow.conn.mark_closing();
            flow.snd.tx.is_empty()
        };
        if drained {
            self.start_teardown(now, fid, fp);
        }
        cycles
    }

    /// Removes the flow from the fast path and sends our FIN. Any unread
    /// receive data is returned to the host (libTAS keeps the buffer).
    fn start_teardown(&mut self, now: SimTime, fid: u32, fp: &mut FastPath) -> Option<ByteRing> {
        let flow = fp.remove_flow(fid)?;
        self.out.events.push(SpAppEvent::Detached {
            opaque: flow.conn.opaque,
            fid,
        });
        // Existing peer-FIN state (remote closed first)?
        let peer_fin = self
            .teardowns
            .get(&flow.conn.key)
            .map(|t| t.peer_fin)
            .unwrap_or(false);
        let fin_seq = flow.seq_of(flow.nxt_off());
        let mut rcv_ack = flow.rcv_seq_of(flow.rcv.rx.end_offset());
        if peer_fin {
            rcv_ack = rcv_ack.wrapping_add(1);
        }
        let td = Teardown {
            key: flow.conn.key,
            peer_mac: flow.conn.peer_mac,
            opaque: flow.conn.opaque,
            fin_seq,
            rcv_ack,
            ts_recent: flow.conn.ts_recent,
            fin_acked: false,
            peer_fin,
            deadline: now + RETRY_AFTER,
            attempts: 0,
        };
        self.send_fin(now, &td);
        self.teardowns.insert(flow.conn.key, td);
        Some(flow.rcv.rx)
    }

    fn send_fin(&mut self, now: SimTime, td: &Teardown) {
        let mut h = TcpHeader::new(
            td.key.local_port,
            td.key.remote_port,
            td.fin_seq,
            td.rcv_ack,
            TcpFlags::FIN | TcpFlags::ACK,
        );
        h.options.timestamp = Some((now.as_micros() as u32, td.ts_recent));
        h.window = self.rx_buf.min(u16::MAX as usize) as u16;
        self.out.packets.push(Segment::tcp(
            self.local_mac,
            td.peer_mac,
            self.local_ip,
            td.key.remote_ip,
            h,
            Vec::new(),
            false,
        ));
    }

    fn send_plain_ack(
        &mut self,
        now: SimTime,
        key: FlowKey,
        peer_mac: MacAddr,
        seq_no: u32,
        ack: u32,
        ts: u32,
    ) {
        let mut h = TcpHeader::new(key.local_port, key.remote_port, seq_no, ack, TcpFlags::ACK);
        h.options.timestamp = Some((now.as_micros() as u32, ts));
        h.window = self.rx_buf.min(u16::MAX as usize) as u16;
        self.out.packets.push(Segment::tcp(
            self.local_mac,
            peer_mac,
            self.local_ip,
            key.remote_ip,
            h,
            Vec::new(),
            false,
        ));
    }

    // ------------------------------------------------------------------
    // Exception processing.

    /// Processes one exception packet forwarded by the fast path.
    /// `fresh_iss` seeds a new ISN when a connection must be created.
    #[allow(clippy::too_many_arguments)] // The handshake tuple is irreducible.
    pub fn on_exception(
        &mut self,
        now: SimTime,
        seg: Segment,
        fp: &mut FastPath,
        fresh_iss: u32,
        fresh_opaque: u64,
        context_for_accept: u16,
        acct: &mut CycleAccount,
    ) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("exception");
        self.stats.exceptions += 1;
        let cycles = self.charge(acct, 900);
        let key = seg.flow_key();
        let f = seg.tcp.flags;
        let ts = seg.tcp.options.timestamp.map(|(v, _)| v).unwrap_or(0);
        if f.contains(TcpFlags::RST) {
            // Reset: drop all state for the tuple.
            if let Some(hs) = self.handshakes.remove(&key) {
                self.out
                    .events
                    .push(SpAppEvent::ConnectFailed { opaque: hs.opaque });
            }
            if let Some(fid) = fp.flows.lookup(&key) {
                fp.remove_flow(fid);
                self.out.events.push(SpAppEvent::PeerClosed { fid });
            }
            self.teardowns.remove(&key);
            return cycles;
        }
        if f.contains(TcpFlags::SYN) && !f.contains(TcpFlags::ACK) {
            // Incoming connection request.
            if let Some(hs) = self.handshakes.get(&key) {
                // Duplicate SYN: if we already answered, answer again.
                if hs.state == HsState::SynAckSent {
                    let copy = hs.clone();
                    self.send_synack(now, &copy);
                }
                return cycles;
            }
            if !self.listeners.contains_key(&key.local_port) {
                self.stats.dropped += 1;
                return cycles;
            }
            let hs = Handshake {
                state: HsState::SynPending,
                key,
                peer_mac: seg.eth.src,
                opaque: fresh_opaque,
                context: context_for_accept,
                iss: fresh_iss,
                irs: seg.tcp.seq,
                peer_wscale: seg.tcp.options.wscale.unwrap_or(0),
                peer_win: seg.tcp.window as u64,
                ts_recent: ts,
                listen_port: key.local_port,
                deadline: now + RETRY_AFTER,
                attempts: 0,
            };
            self.handshakes.insert(key, hs);
            // The host relays the accept decision through `accept()`
            // (charging the application's side of the handshake).
            return cycles;
        }
        if f.contains(TcpFlags::SYN | TcpFlags::ACK) {
            // SYN-ACK for one of our connects.
            let Some(mut hs) = self.handshakes.remove(&key) else {
                self.stats.dropped += 1;
                return cycles;
            };
            if hs.state != HsState::SynSent || seg.tcp.ack != hs.iss.wrapping_add(1) {
                self.handshakes.insert(key, hs);
                return cycles;
            }
            hs.irs = seg.tcp.seq;
            hs.peer_wscale = seg.tcp.options.wscale.unwrap_or(0);
            hs.peer_win = seg.tcp.window as u64; // SYN windows unscaled.
            hs.ts_recent = ts;
            // Final ACK of the handshake.
            self.send_plain_ack(
                now,
                key,
                hs.peer_mac,
                hs.iss.wrapping_add(1),
                hs.irs.wrapping_add(1),
                hs.ts_recent,
            );
            let fid = self.install(fp, &hs, now);
            self.out.events.push(SpAppEvent::ConnectDone {
                opaque: hs.opaque,
                fid,
            });
            return cycles;
        }
        if f.contains(TcpFlags::FIN) {
            return cycles + self.on_fin(now, seg, fp, acct);
        }
        // Plain ACK exceptions: final handshake ACK or teardown ACK.
        if f.contains(TcpFlags::ACK) {
            let hs_done = self
                .handshakes
                .get(&key)
                .is_some_and(|hs| hs.state == HsState::SynAckSent && seg.tcp.ack == hs.iss.wrapping_add(1));
            if hs_done {
                if let Some(mut hs) = self.handshakes.remove(&key) {
                    hs.ts_recent = ts;
                    hs.peer_win = (seg.tcp.window as u64) << hs.peer_wscale;
                    let fid = self.install(fp, &hs, now);
                    self.out.events.push(SpAppEvent::AcceptDone {
                        opaque: hs.opaque,
                        fid,
                        port: hs.listen_port,
                        key,
                    });
                    // Data may ride on the handshake-completing ACK; now
                    // that the flow is installed, the fast path takes it.
                    if !seg.payload.is_empty() {
                        fp.rx_segment(now, seg, acct);
                    }
                    return cycles;
                }
            }
            if let Some(td) = self.teardowns.get_mut(&key) {
                if seg.tcp.ack == td.fin_seq.wrapping_add(1) {
                    td.fin_acked = true;
                    if td.peer_fin {
                        let Some(td) = self.teardowns.remove(&key) else {
                            debug_assert!(false, "teardown vanished mid-ack");
                            return cycles;
                        };
                        self.stats.closed += 1;
                        #[cfg(feature = "trace")]
                        trace_sp(
                            now,
                            tas_telemetry::TraceEvent::State {
                                flow: key,
                                from: "closing",
                                to: "closed",
                            },
                        );
                        self.out
                            .events
                            .push(SpAppEvent::CloseDone { opaque: td.opaque });
                    }
                    return cycles;
                }
            }
            self.stats.dropped += 1;
            return cycles;
        }
        self.stats.dropped += 1;
        cycles
    }

    fn on_fin(
        &mut self,
        now: SimTime,
        seg: Segment,
        fp: &mut FastPath,
        _acct: &mut CycleAccount,
    ) -> u64 {
        let key = seg.flow_key();
        let ts = seg.tcp.options.timestamp.map(|(v, _)| v).unwrap_or(0);
        // Case 1: flow still installed — peer closed first.
        if let Some(fid) = fp.flows.lookup(&key) {
            let Some(flow) = fp.flows.get_mut(fid) else {
                debug_assert!(false, "flow table lookup returned fid {fid} without an entry");
                return 0;
            };
            let expected = flow.rcv_seq_of(flow.rcv.rx.end_offset());
            // Deliver any payload carried with the FIN (rare; peers here
            // send pure FINs, but be liberal).
            let fin_seq = seg.tcp.seq.wrapping_add(seg.payload.len() as u32);
            if seq::gt(fin_seq, expected) && !seg.payload.is_empty() && seg.tcp.seq == expected {
                let take = seg.payload.len().min(flow.rcv.rx.free());
                if flow.rcv.rx.append(&seg.payload[..take]).is_err() {
                    debug_assert!(false, "append is bounded by rx.free()");
                }
            }
            let rcv_ack = flow.rcv_seq_of(flow.rcv.rx.end_offset()).wrapping_add(1);
            let peer_mac = flow.conn.peer_mac;
            let seq_no = flow.seq_of(flow.nxt_off());
            // Record the peer FIN so a later local close skips its wait.
            let td = Teardown {
                key,
                peer_mac,
                opaque: flow.conn.opaque,
                fin_seq: 0,
                rcv_ack,
                ts_recent: ts,
                fin_acked: false,
                peer_fin: true,
                deadline: SimTime::MAX,
                attempts: 0,
            };
            self.send_plain_ack(now, key, peer_mac, seq_no, rcv_ack, ts);
            self.teardowns.insert(key, td);
            self.out.events.push(SpAppEvent::PeerClosed { fid });
            return 0;
        }
        // Case 2: we closed first; peer's FIN completes the teardown.
        if let Some(td) = self.teardowns.get_mut(&key) {
            td.peer_fin = true;
            td.ts_recent = ts;
            let ack = seg
                .tcp
                .seq
                .wrapping_add(seg.payload.len() as u32)
                .wrapping_add(1);
            td.rcv_ack = ack;
            let (peer_mac, fin_seq, fin_acked) = (td.peer_mac, td.fin_seq, td.fin_acked);
            // ACK their FIN; our seq is past our FIN.
            self.send_plain_ack(now, key, peer_mac, fin_seq.wrapping_add(1), ack, ts);
            if fin_acked
                || seg.tcp.flags.contains(TcpFlags::ACK) && seg.tcp.ack == fin_seq.wrapping_add(1)
            {
                let Some(td) = self.teardowns.remove(&key) else {
                    debug_assert!(false, "teardown vanished mid-fin");
                    return 0;
                };
                self.stats.closed += 1;
                #[cfg(feature = "trace")]
                trace_sp(
                    now,
                    tas_telemetry::TraceEvent::State {
                        flow: key,
                        from: "closing",
                        to: "closed",
                    },
                );
                self.out
                    .events
                    .push(SpAppEvent::CloseDone { opaque: td.opaque });
            }
            return 0;
        }
        // Stray FIN (state already gone): ACK it so the peer stops.
        self.send_plain_ack(
            now,
            key,
            seg.eth.src,
            seg.tcp.ack,
            seg.tcp
                .seq
                .wrapping_add(seg.payload.len() as u32)
                .wrapping_add(1),
            ts,
        );
        0
    }

    /// The host relays the application's accept for a pending incoming
    /// connection (identified by listen port). Returns the number of
    /// handshakes answered.
    pub fn accept_pending(&mut self, now: SimTime, acct: &mut CycleAccount) -> usize {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("accept");
        self.charge(acct, 900);
        let keys: Vec<FlowKey> = self
            .handshakes
            .iter()
            .filter(|(_, h)| h.state == HsState::SynPending)
            .map(|(k, _)| *k)
            .collect();
        for k in &keys {
            let Some(hs) = self.handshakes.get_mut(k) else {
                debug_assert!(false, "pending handshake vanished within accept_pending");
                continue;
            };
            hs.state = HsState::SynAckSent;
            hs.deadline = now + RETRY_AFTER;
            let snapshot = hs.clone();
            self.send_synack(now, &snapshot);
        }
        keys.len()
    }

    /// True when incoming handshakes await an application accept.
    pub fn has_pending_accepts(&self) -> bool {
        self.handshakes
            .values()
            .any(|h| h.state == HsState::SynPending)
    }

    // ------------------------------------------------------------------
    // Control loop.

    /// One control-loop iteration over all flows: congestion control,
    /// stall/retransmit detection, deferred closes, handshake retries.
    /// Returns the cycle cost (proportional to flow count).
    pub fn control_loop(
        &mut self,
        now: SimTime,
        fp: &mut FastPath,
        acct: &mut CycleAccount,
    ) -> u64 {
        // Effective interval since the previous iteration (self-pacing).
        let effective = if self.last_loop == SimTime::ZERO {
            self.control_interval
        } else {
            (now - self.last_loop).max(self.control_interval)
        };
        self.last_loop = now;
        let interval_secs = effective.as_secs_f64();
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("control");
        // Fast-path work driven from this loop charges itself through
        // `FastPath::charge`; track it so the trailing bulk charge below
        // can profile only the loop's own cycles.
        #[cfg(feature = "profile")]
        let mut fp_cycles = 0u64;
        let mut cycles = self.charge(acct, 300);
        let mut rexmit: Vec<u32> = Vec::new();
        let mut probe: Vec<u32> = Vec::new();
        let mut to_close: Vec<u32> = Vec::new();
        let mut rate_updates: Vec<(u32, u64)> = Vec::new();
        for (fid, flow) in fp.flows.iter_mut() {
            cycles += 60; // Per-flow control work.
                          // Stall detection (paper: unacked data with constant sequence
                          // number for 2 control intervals → retransmit).
            if flow.snd.tx_sent > 0 {
                if flow.snd.tx.start_offset() == flow.snd.last_una_off {
                    let stalls = flow.snd.bump_stall();
                    // Retransmit after the configured number of intervals,
                    // but never before several RTTs have elapsed (the flow's
                    // own timescale; avoids spurious go-back-N when RTTs
                    // inflate under load).
                    let stalled_for = effective.as_ps().saturating_mul(stalls as u64);
                    let rtt_floor = (flow.conn.rtt_est_us as u64)
                        .saturating_mul(3_000_000) // 3 RTTs in ps.
                        .max(effective.as_ps());
                    if stalls >= self.stall_intervals_for_rexmit && stalled_for >= rtt_floor {
                        flow.snd.clear_stall();
                        // Count as loss for the next CC iteration.
                        flow.cc.count_fast_rexmit();
                        rexmit.push(fid);
                    }
                } else {
                    flow.snd.clear_stall();
                }
            } else if flow.snd.tx.len() > flow.snd.tx_sent as usize
                && flow.fc.snd_wnd < self.mss as u64
            {
                // Zero-window persist: pending data, nothing in flight,
                // shut window — probe so a lost window update cannot
                // deadlock the flow.
                if flow.snd.bump_stall() >= self.stall_intervals_for_rexmit {
                    flow.snd.clear_stall();
                    probe.push(fid);
                }
            } else {
                flow.snd.clear_stall();
            }
            flow.snd.sample_una();
            // Congestion control.
            match self.cc {
                CcAlgo::None => {}
                CcAlgo::DctcpRate => {
                    let cur = flow.cc.bucket.rate_bps.saturating_mul(8);
                    let newr = dctcp_rate_iteration(flow, cur, interval_secs, &self.dctcp);
                    if newr != cur {
                        rate_updates.push((fid, newr));
                    }
                }
                CcAlgo::Timely => {
                    let cur = flow.cc.bucket.rate_bps.saturating_mul(8);
                    let newr = timely_iteration(flow, cur, &self.timely);
                    if newr != cur {
                        rate_updates.push((fid, newr));
                    }
                }
            }
            // Deferred close once drained.
            if flow.conn.closing && flow.snd.tx.is_empty() {
                to_close.push(fid);
            }
        }
        for (fid, bps) in rate_updates {
            let burst = self.burst_for(bps);
            #[cfg(feature = "trace")]
            if let Some(flow) = fp.flows.get(fid) {
                trace_sp(
                    now,
                    tas_telemetry::TraceEvent::CcRate {
                        flow: flow.conn.key,
                        rate: bps,
                    },
                );
            }
            fp.set_rate(fid, bps, burst, now);
            // A rate increase may unblock a paced flow immediately (the
            // armed pacing timer, if any, remains valid).
            let c = fp.poke_tx(now, fid, acct);
            #[cfg(feature = "profile")]
            {
                fp_cycles += c;
            }
            cycles += c;
        }
        for fid in rexmit {
            self.stats.timeout_rexmits += 1;
            let c = fp.trigger_retransmit(now, fid, acct);
            #[cfg(feature = "profile")]
            {
                fp_cycles += c;
            }
            cycles += c;
        }
        for fid in probe {
            let c = fp.window_probe(now, fid, acct);
            #[cfg(feature = "profile")]
            {
                fp_cycles += c;
            }
            cycles += c;
        }
        for fid in to_close {
            self.start_teardown(now, fid, fp);
        }
        // Handshake and teardown retries.
        let mut give_up_hs: Vec<FlowKey> = Vec::new();
        let mut resend_syn: Vec<FlowKey> = Vec::new();
        let mut resend_synack: Vec<FlowKey> = Vec::new();
        for (k, hs) in self.handshakes.iter_mut() {
            if hs.state == HsState::SynPending || now < hs.deadline {
                continue;
            }
            hs.attempts += 1;
            if hs.attempts > MAX_ATTEMPTS {
                give_up_hs.push(*k);
                continue;
            }
            hs.deadline = now + RETRY_AFTER;
            match hs.state {
                HsState::SynSent => resend_syn.push(*k),
                HsState::SynAckSent => resend_synack.push(*k),
                HsState::SynPending => {}
            }
        }
        for k in resend_syn {
            self.stats.handshake_rexmits += 1;
            let Some(hs) = self.snapshot_hs(&k) else {
                debug_assert!(false, "handshake vanished before SYN resend");
                continue;
            };
            #[cfg(feature = "trace")]
            trace_sp(
                now,
                tas_telemetry::TraceEvent::Retransmit {
                    flow: k,
                    kind: "handshake",
                    seq: hs.iss,
                },
            );
            self.send_syn(now, &hs);
        }
        for k in resend_synack {
            self.stats.handshake_rexmits += 1;
            let Some(hs) = self.snapshot_hs(&k) else {
                debug_assert!(false, "handshake vanished before SYN-ACK resend");
                continue;
            };
            #[cfg(feature = "trace")]
            trace_sp(
                now,
                tas_telemetry::TraceEvent::Retransmit {
                    flow: k,
                    kind: "handshake",
                    seq: hs.iss,
                },
            );
            self.send_synack(now, &hs);
        }
        for k in give_up_hs {
            let Some(hs) = self.handshakes.remove(&k) else {
                debug_assert!(false, "expired handshake vanished before removal");
                continue;
            };
            if hs.state == HsState::SynSent {
                self.out
                    .events
                    .push(SpAppEvent::ConnectFailed { opaque: hs.opaque });
            }
        }
        let mut resend_fin: Vec<FlowKey> = Vec::new();
        let mut drop_td: Vec<FlowKey> = Vec::new();
        for (k, td) in self.teardowns.iter_mut() {
            if td.fin_acked || td.deadline == SimTime::MAX || now < td.deadline {
                continue;
            }
            td.attempts += 1;
            if td.attempts > MAX_ATTEMPTS {
                drop_td.push(*k);
                continue;
            }
            td.deadline = now + RETRY_AFTER;
            resend_fin.push(*k);
        }
        for k in resend_fin {
            let Some(snapshot) = self.teardowns.get(&k).cloned() else {
                debug_assert!(false, "teardown vanished before FIN resend");
                continue;
            };
            self.send_fin(now, &snapshot);
        }
        for k in drop_td {
            let Some(td) = self.teardowns.remove(&k) else {
                debug_assert!(false, "expired teardown vanished before removal");
                continue;
            };
            self.stats.closed += 1;
            #[cfg(feature = "trace")]
            trace_sp(
                now,
                tas_telemetry::TraceEvent::State {
                    flow: k,
                    from: "closing",
                    to: "closed",
                },
            );
            self.out
                .events
                .push(SpAppEvent::CloseDone { opaque: td.opaque });
        }
        // The bulk charge keeps the historical account total (which
        // double-bills fp-driven work into "Other"); the profiler sees
        // only the loop's own cycles — the fp portion already queued
        // itself through `FastPath::charge` under its own frames.
        acct.charge(
            Module::Other,
            cycles.saturating_sub(300),
            cycles.saturating_sub(300),
        );
        #[cfg(feature = "profile")]
        tas_telemetry::profile::charge(cycles.saturating_sub(300).saturating_sub(fp_cycles));
        cycles
    }

    fn snapshot_hs(&self, k: &FlowKey) -> Option<Handshake> {
        self.handshakes.get(k).cloned()
    }

    /// The control-loop interval τ.
    pub fn control_interval(&self) -> SimTime {
        self.control_interval
    }
}
