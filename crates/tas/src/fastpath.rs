//! The TAS fast path (paper §3.1).
//!
//! Handles the minimum functionality for common-case RPC packet exchange:
//! header validation, flow lookup, in-order payload deposit into per-flow
//! user-space receive buffers, ACK generation with DCTCP-accurate ECN echo
//! and timestamps, transmit segmentation under rate-bucket/window
//! enforcement, plus exactly two inline exceptions — duplicate-ACK fast
//! recovery and a single tracked out-of-order interval. Everything else
//! (SYN/FIN/RST, fragments, unknown flows) is forwarded to the slow path.
//!
//! The fast path is sans-IO: methods stage packets, context-queue notices,
//! slow-path exceptions, and pacing-timer requests into [`FpOut`]; the host
//! drains them and charges the returned cycle cost to the owning core.

use crate::config::TasCosts;
use crate::flow::{FlowState, FlowTable};
use std::net::Ipv4Addr;
use tas_cpusim::{CycleAccount, Module};
use tas_proto::tcp::seq;
use tas_proto::{Ecn, MacAddr, PayloadBuf, Segment, TcpFlags, TcpHeader};
use tas_sim::SimTime;

/// TAS's receive window scale shift (negotiated by the slow path).
pub const TAS_WSCALE: u8 = 7;

/// Emits a flight-recorder record at site `"fp"`.
#[cfg(feature = "trace")]
fn trace_fp(t: SimTime, ev: tas_telemetry::TraceEvent) {
    tas_telemetry::emit(|| tas_telemetry::TraceRecord { t, site: "fp", ev });
}

/// A descriptor posted to an application's RX context queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RxNotice {
    /// The application-defined flow identifier.
    pub opaque: u64,
    /// Newly readable in-order bytes.
    pub rx_bytes: u32,
    /// Newly acknowledged (reliably delivered) transmit bytes.
    pub tx_acked: u32,
}

/// Staged fast-path effects, drained by the host after each operation.
#[derive(Debug, Default)]
pub struct FpOut {
    /// Packets to transmit.
    pub packets: Vec<Segment>,
    /// Notices for application context queues.
    pub notices: Vec<(u16, RxNotice)>,
    /// Exception packets forwarded to the slow path.
    pub exceptions: Vec<Segment>,
    /// Pacing timers to arm: (flow id, absolute time).
    pub tx_timers: Vec<(u32, SimTime)>,
}

/// Fast-path counters (per host).
#[derive(Clone, Copy, Debug, Default)]
pub struct FpStats {
    /// Data/ACK packets processed on the fast path.
    pub pkts_rx: u64,
    /// Data segments transmitted.
    pub segs_tx: u64,
    /// Pure ACKs generated.
    pub acks_tx: u64,
    /// Packets forwarded to the slow path.
    pub exceptions: u64,
    /// Packets dropped because the receive payload buffer was full.
    pub drop_buf_full: u64,
    /// Out-of-order segments dropped (outside the single interval).
    pub drop_ooo: u64,
    /// In-order bytes delivered to payload buffers.
    pub bytes_rx: u64,
    /// Fast retransmits triggered by duplicate ACKs.
    pub fast_rexmits: u64,
    /// Pacing timers armed.
    pub timers_armed: u64,
    /// Pacing-timer expirations processed.
    pub tx_polls: u64,
}

/// The fast path: flow table plus staging buffers.
#[derive(Debug)]
pub struct FastPath {
    /// Installed flows.
    pub flows: FlowTable,
    /// Local IP (for segment construction).
    pub local_ip: Ipv4Addr,
    /// Local MAC.
    pub local_mac: MacAddr,
    /// Maximum segment size.
    pub mss: u32,
    /// Track the single out-of-order interval (false = go-back-N).
    pub ooo_rx: bool,
    costs: TasCosts,
    /// Staged effects.
    pub out: FpOut,
    /// Counters.
    pub stats: FpStats,
}

impl FastPath {
    /// Creates a fast path for a host.
    pub fn new(local_ip: Ipv4Addr, local_mac: MacAddr, mss: u32, costs: TasCosts) -> Self {
        FastPath {
            flows: FlowTable::new(),
            local_ip,
            local_mac,
            mss,
            ooo_rx: true,
            costs,
            out: FpOut::default(),
            stats: FpStats::default(),
        }
    }

    fn charge(&self, acct: &mut CycleAccount, module: Module, cycles: u64) -> u64 {
        let instr = cycles * self.costs.ipc_times_100 / 100;
        acct.charge(module, cycles, instr);
        // Every fast-path cycle flows through this funnel, so the
        // attribution profiler sees the exact cost the host will run.
        #[cfg(feature = "profile")]
        tas_telemetry::profile::charge(cycles);
        cycles
    }

    /// Processes one received packet. Returns the cycle cost.
    pub fn rx_segment(&mut self, now: SimTime, seg: Segment, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("rx");
        let mut cycles = self.charge(acct, Module::Driver, self.costs.drv_rx);
        // Exception filter: connection control, unusual flags, fragments,
        // unknown flows — all slow-path work.
        let f = seg.tcp.flags;
        let exceptional = f
            .intersects(TcpFlags::SYN | TcpFlags::FIN | TcpFlags::RST | TcpFlags::URG)
            || seg.ip.is_fragment();
        let flow_id = if exceptional {
            None
        } else {
            self.flows.lookup(&seg.flow_key())
        };
        let Some(fid) = flow_id else {
            self.stats.exceptions += 1;
            cycles += self.charge(acct, Module::Tcp, 40);
            self.out.exceptions.push(seg);
            return cycles;
        };
        self.stats.pkts_rx += 1;
        let has_payload = !seg.payload.is_empty();
        // Timestamp echo bookkeeping.
        if let (Some((tsval, tsecr)), Some(flow)) =
            (seg.tcp.options.timestamp, self.flows.get_mut(fid))
        {
            flow.conn.note_ts(tsval);
            if f.contains(TcpFlags::ACK) && tsecr != 0 {
                let sample = now.as_micros().wrapping_sub(tsecr as u64).max(1) as u32;
                // EWMA 7/8, like the kernel's SRTT.
                flow.conn.rtt_sample(sample);
            }
        }
        if f.contains(TcpFlags::ACK) {
            cycles += self.process_ack(now, fid, &seg, has_payload, acct);
        }
        if has_payload {
            cycles += self.process_data(now, fid, seg, acct);
        }
        cycles
    }

    fn process_ack(
        &mut self,
        now: SimTime,
        fid: u32,
        seg: &Segment,
        has_payload: bool,
        acct: &mut CycleAccount,
    ) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("ack");
        let cost = if has_payload {
            // Piggybacked ACK: the data-path cost covers it.
            30
        } else {
            self.costs.tcp_rx_ack
        };
        let mut cycles = self.charge(acct, Module::Tcp, cost);
        let mut acked_notice = 0u32;
        let mut want_tx = false;
        {
            let Some(flow) = self.flows.get_mut(fid) else {
                debug_assert!(false, "process_ack: flow {fid} not installed");
                return cycles;
            };
            let ece = seg.tcp.flags.contains(TcpFlags::ECE);
            let una_seq = flow.seq_of(flow.snd.tx.start_offset());
            // Accept cumulative ACKs up to the highest byte ever sent —
            // recovery may have rewound `tx_sent` below data the peer has.
            let hi_seq = flow.seq_of(flow.snd.max_sent_off.max(flow.nxt_off()));
            let ack = seg.tcp.ack;
            let new_wnd = (seg.tcp.window as u64) << flow.fc.peer_wscale;
            // Window growth marks a window update, not a duplicate; a
            // shrinking window accompanies held out-of-order data and is
            // a genuine loss signal.
            let wnd_unchanged = new_wnd <= flow.fc.snd_wnd;
            flow.fc.update_wnd(new_wnd);
            if seq::gt(ack, una_seq) && seq::le(ack, hi_seq) {
                let newly = seq::sub(ack, una_seq) as u64;
                if !flow.snd.consume_acked(newly) {
                    // ACK range validated against hi_seq above; degrade by
                    // ignoring the ACK rather than corrupting the ring.
                    debug_assert!(false, "acked bytes within the tx ring");
                    return cycles;
                }
                flow.cc.count_acked(newly, ece);
                flow.snd.reset_dupacks();
                acked_notice = newly as u32;
                want_tx = true;
            } else if ack == una_seq && !has_payload && flow.snd.tx_sent > 0 && wnd_unchanged {
                // Fast-path exception #1: duplicate ACK counting and fast
                // recovery — reset the sender as if unacked segments were
                // never sent (§3.1). Window updates are not duplicates
                // (RFC 5681's "no window change" condition).
                let dupacks = flow.snd.count_dupack();
                if ece {
                    // Count a nominal MSS of marked bytes so the slow path
                    // sees congestion feedback even without progress.
                    flow.cc.count_nominal_mark(self.mss as u64);
                }
                if dupacks >= 3 {
                    flow.snd.reset_for_fast_rexmit();
                    flow.cc.count_fast_rexmit();
                    self.stats.fast_rexmits += 1;
                    #[cfg(feature = "trace")]
                    trace_fp(
                        now,
                        tas_telemetry::TraceEvent::Retransmit {
                            flow: flow.conn.key,
                            kind: "fast",
                            seq: flow.seq_of(flow.snd.tx.start_offset()),
                        },
                    );
                    want_tx = true;
                }
            } else if !wnd_unchanged {
                // A pure window update may unblock transmission.
                want_tx = true;
            }
        }
        if acked_notice > 0 {
            let Some(flow) = self.flows.get(fid) else {
                debug_assert!(false, "flow {fid} vanished mid-ack");
                return cycles;
            };
            let notice = RxNotice {
                opaque: flow.conn.opaque,
                rx_bytes: 0,
                tx_acked: acked_notice,
            };
            self.out.notices.push((flow.conn.context, notice));
        }
        if want_tx {
            cycles += self.try_tx(now, fid, acct);
        }
        cycles
    }

    fn process_data(
        &mut self,
        now: SimTime,
        fid: u32,
        seg: Segment,
        acct: &mut CycleAccount,
    ) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("data");
        let mut cycles = self.charge(acct, Module::Tcp, self.costs.tcp_rx_data);
        let mut notify_bytes = 0u64;
        {
            let Some(flow) = self.flows.get_mut(fid) else {
                debug_assert!(false, "process_data: flow {fid} not installed");
                return cycles;
            };
            flow.cc.note_ce(seg.is_ce_marked());
            let expected = flow.rcv_seq_of(flow.rcv.rx.end_offset());
            let mut seg_seq = seg.tcp.seq;
            let mut data: &[u8] = &seg.payload;
            // Trim a partially-old segment.
            if seq::lt(seg_seq, expected) {
                let old = seq::sub(expected, seg_seq) as usize;
                if old >= data.len() {
                    data = &[];
                } else {
                    data = &data[old..];
                    seg_seq = expected;
                }
            }
            if data.is_empty() {
                // Entirely duplicate: ACK to resynchronize the peer.
            } else if seg_seq == expected {
                // Common case: in-order deposit directly into the
                // user-space payload buffer.
                if flow.rcv.rx.free() >= data.len() {
                    if flow.rcv.rx.append(data).is_err() {
                        debug_assert!(false, "append within checked free space");
                        self.stats.drop_buf_full += 1;
                        return cycles;
                    }
                    notify_bytes = data.len() as u64;
                    // Merge the tracked out-of-order interval if the gap
                    // just closed ("as if one big segment arrived").
                    if flow.rcv.ooo_len > 0 && flow.rcv.ooo_start <= flow.rcv.rx.end_offset() {
                        let int_end = flow.rcv.ooo_start + flow.rcv.ooo_len as u64;
                        let end = flow.rcv.rx.end_offset();
                        if int_end > end {
                            if flow.rcv.rx.advance_end(int_end - end).is_ok() {
                                notify_bytes += int_end - end;
                            } else {
                                debug_assert!(false, "ooo interval within the ring");
                            }
                        }
                        flow.rcv.clear_ooo();
                    }
                } else {
                    // Payload buffer full: drop the packet (§3.1) — TCP
                    // flow control makes this uncommon.
                    self.stats.drop_buf_full += 1;
                    return cycles;
                }
            } else {
                // Fast-path exception #2: one tracked out-of-order
                // interval within the receive buffer.
                let off = flow.rcv.rx.end_offset() + seq::sub(seg_seq, expected) as u64;
                let horizon = flow.rcv.rx.start_offset() + flow.rcv.rx.capacity() as u64;
                let fits = off + data.len() as u64 <= horizon;
                let int_end = flow.rcv.ooo_start + flow.rcv.ooo_len as u64;
                if !self.ooo_rx {
                    // Go-back-N mode: drop everything out of order.
                    self.stats.drop_ooo += 1;
                } else if !fits {
                    self.stats.drop_ooo += 1;
                } else if flow.rcv.ooo_len == 0 {
                    if flow.rcv.rx.write_at(off, data).is_ok() {
                        flow.rcv.set_ooo(off, data.len() as u32);
                        #[cfg(feature = "trace")]
                        trace_fp(
                            now,
                            tas_telemetry::TraceEvent::OooPlace {
                                flow: flow.conn.key,
                                start: flow.rcv.ooo_start,
                                len: flow.rcv.ooo_len as u64,
                            },
                        );
                    } else {
                        // `fits` was checked against the horizon; degrade
                        // by dropping rather than panicking mid-packet.
                        debug_assert!(false, "ooo write fits by horizon check");
                        self.stats.drop_ooo += 1;
                    }
                } else if off >= flow.rcv.ooo_start && off + data.len() as u64 <= int_end {
                    // Duplicate of data already staged.
                } else if off == int_end {
                    if flow.rcv.rx.write_at(off, data).is_ok() {
                        flow.rcv.grow_ooo_tail(data.len() as u32);
                        #[cfg(feature = "trace")]
                        trace_fp(
                            now,
                            tas_telemetry::TraceEvent::OooPlace {
                                flow: flow.conn.key,
                                start: flow.rcv.ooo_start,
                                len: flow.rcv.ooo_len as u64,
                            },
                        );
                    } else {
                        debug_assert!(false, "ooo write fits by horizon check");
                        self.stats.drop_ooo += 1;
                    }
                } else if off + data.len() as u64 == flow.rcv.ooo_start {
                    if flow.rcv.rx.write_at(off, data).is_ok() {
                        flow.rcv.grow_ooo_head(off, data.len() as u32);
                        #[cfg(feature = "trace")]
                        trace_fp(
                            now,
                            tas_telemetry::TraceEvent::OooPlace {
                                flow: flow.conn.key,
                                start: flow.rcv.ooo_start,
                                len: flow.rcv.ooo_len as u64,
                            },
                        );
                    } else {
                        debug_assert!(false, "ooo write fits by horizon check");
                        self.stats.drop_ooo += 1;
                    }
                } else {
                    // Not mergeable with the single interval: drop; the
                    // ACK below triggers fast retransmission at the peer.
                    self.stats.drop_ooo += 1;
                }
            }
            self.stats.bytes_rx += notify_bytes;
        }
        if notify_bytes > 0 {
            let Some(flow) = self.flows.get(fid) else {
                debug_assert!(false, "flow {fid} vanished mid-data");
                return cycles;
            };
            self.out.notices.push((
                flow.conn.context,
                RxNotice {
                    opaque: flow.conn.opaque,
                    rx_bytes: notify_bytes as u32,
                    tx_acked: 0,
                },
            ));
        }
        cycles += self.emit_ack(now, fid, acct);
        cycles
    }

    /// Stages a pure ACK for a flow.
    fn emit_ack(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("ack_tx");
        let cycles = self.charge(acct, Module::Tcp, self.costs.tcp_ack_gen)
            + self.charge(acct, Module::Driver, self.costs.drv_tx);
        let mss = self.mss as u64;
        {
            let Some(flow) = self.flows.get_mut(fid) else {
                debug_assert!(false, "emit_ack: flow {fid} not installed");
                return cycles;
            };
            let closed = flow.adv_window() < mss;
            flow.fc.set_win_closed(closed);
        }
        let Some(flow) = self.flows.get(fid) else {
            debug_assert!(false, "emit_ack: flow {fid} not installed");
            return cycles;
        };
        let mut h = TcpHeader::new(
            flow.conn.key.local_port,
            flow.conn.key.remote_port,
            flow.seq_of(flow.nxt_off()),
            flow.rcv_seq_of(flow.rcv.rx.end_offset()),
            TcpFlags::ACK,
        );
        if flow.cc.last_seg_ce {
            // DCTCP-accurate per-packet ECN echo.
            h.flags |= TcpFlags::ECE;
        }
        h.window = (flow.adv_window() >> TAS_WSCALE).min(u16::MAX as u64) as u16;
        h.options.timestamp = Some((now.as_micros() as u32, flow.conn.ts_recent));
        let seg = Segment::tcp(
            self.local_mac,
            flow.conn.peer_mac,
            self.local_ip,
            flow.conn.key.remote_ip,
            h,
            PayloadBuf::empty(),
            false,
        );
        self.stats.acks_tx += 1;
        self.out.packets.push(seg);
        cycles
    }

    /// Handles a TX command from a context queue (the application appended
    /// data to a flow's transmit buffer). Returns the cycle cost. The flow
    /// may already be gone (teardown raced the queued command).
    pub fn tx_command(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("tx_cmd");
        let mut cycles = self.charge(acct, Module::Tcp, self.costs.tcp_tx_cmd);
        if self.flows.get(fid).is_some() {
            cycles += self.try_tx(now, fid, acct);
        }
        cycles
    }

    /// Handles an RX-bump command: the application advanced its read
    /// pointer. If the advertised window had collapsed below one MSS, an
    /// explicit window-update ACK un-sticks a blocked sender.
    pub fn rx_bump(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("rx_bump");
        let mut cycles = self.charge(acct, Module::Tcp, self.costs.rx_bump);
        let emit = match self.flows.get_mut(fid) {
            Some(flow) => flow.fc.win_closed && flow.adv_window() >= self.mss as u64,
            None => false,
        };
        if emit {
            cycles += self.emit_ack(now, fid, acct);
        }
        cycles
    }

    /// Pokes a flow's transmitter without consuming its armed pacing
    /// timer (used by the slow path after rate updates — the pending
    /// timer, if any, stays valid).
    pub fn poke_tx(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        if self.flows.get(fid).is_none() {
            return 0;
        }
        self.try_tx(now, fid, acct)
    }

    /// Handles a pacing-timer expiration for a flow.
    pub fn tx_poll(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("tx_poll");
        self.stats.tx_polls += 1;
        if let Some(flow) = self.flows.get_mut(fid) {
            flow.snd.clear_tx_timer();
        } else {
            return 0;
        }
        self.try_tx(now, fid, acct)
    }

    /// Transmits whatever the rate bucket, congestion window, and peer
    /// window currently allow.
    fn try_tx(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("tx");
        let mut cycles = 0;
        let mut arm_at: Option<SimTime> = None;
        let mut sent_segments = 0u64;
        {
            let mss = self.mss as u64;
            // The flow may have been torn down between the triggering
            // event and this deferred execution.
            let Some(flow) = self.flows.get_mut(fid) else {
                return 0;
            };
            flow.cc.bucket.refill(now);
            loop {
                let avail = flow.snd.tx.end_offset().saturating_sub(flow.nxt_off());
                let wnd = flow.fc.snd_wnd.min(flow.cc.cwnd);
                let budget = wnd.saturating_sub(flow.snd.tx_sent);
                let mut n = avail.min(budget).min(mss);
                if n == 0 {
                    break;
                }
                if !flow.cc.bucket.is_unlimited() {
                    if flow.cc.bucket.tokens == 0
                        || (flow.cc.bucket.tokens < n && flow.cc.bucket.tokens < mss)
                    {
                        // Paced out: arm a timer for when one segment's
                        // credit accrues.
                        let need = n.min(mss);
                        let wait = flow.cc.bucket.time_until(need, now);
                        if wait < SimTime::MAX && !flow.snd.tx_timer_armed {
                            flow.snd.arm_tx_timer();
                            arm_at = Some(now + wait.max(SimTime::from_ns(500)));
                        }
                        break;
                    }
                    n = n.min(flow.cc.bucket.tokens);
                }
                let off = flow.nxt_off();
                // Pooled buffer filled straight from the ring: the per-
                // packet tx path never touches the allocator in steady
                // state.
                let mut ok = true;
                let payload = PayloadBuf::with(n as usize, |dst| {
                    ok = flow.snd.tx.read_into(off, dst).is_ok();
                });
                if !ok {
                    debug_assert!(false, "tx offset within ring");
                    break;
                }
                let mut h = TcpHeader::new(
                    flow.conn.key.local_port,
                    flow.conn.key.remote_port,
                    flow.seq_of(off),
                    flow.rcv_seq_of(flow.rcv.rx.end_offset()),
                    TcpFlags::ACK | TcpFlags::PSH,
                );
                if flow.cc.last_seg_ce {
                    h.flags |= TcpFlags::ECE;
                }
                h.window = (flow.adv_window() >> TAS_WSCALE).min(u16::MAX as u64) as u16;
                h.options.timestamp = Some((now.as_micros() as u32, flow.conn.ts_recent));
                let mut seg = Segment::tcp(
                    self.local_mac,
                    flow.conn.peer_mac,
                    self.local_ip,
                    flow.conn.key.remote_ip,
                    h,
                    payload,
                    false,
                );
                seg.ip.ecn = Ecn::Ect0;
                flow.snd.note_sent(n);
                flow.cc.bucket.consume(n);
                sent_segments += 1;
                self.out.packets.push(seg);
                self.stats.segs_tx += 1;
            }
        }
        if sent_segments > 0 {
            cycles += self.charge(acct, Module::Tcp, self.costs.tcp_tx_seg * sent_segments);
            cycles += self.charge(acct, Module::Driver, self.costs.drv_tx * sent_segments);
        }
        if let Some(at) = arm_at {
            self.stats.timers_armed += 1;
            self.out.tx_timers.push((fid, at));
        }
        cycles
    }

    // ------------------------------------------------------------------
    // Slow-path control interface (charged to the slow-path core by the
    // host).

    /// Installs an established flow (slow path, after handshake).
    pub fn install_flow(&mut self, flow: FlowState) -> u32 {
        self.flows.insert(flow)
    }

    /// Removes a flow (slow path, connection teardown).
    pub fn remove_flow(&mut self, fid: u32) -> Option<FlowState> {
        self.flows.remove(fid)
    }

    /// Updates a flow's rate limit (slow-path congestion control).
    pub fn set_rate(&mut self, fid: u32, bits_per_sec: u64, burst: u64, now: SimTime) {
        if let Some(flow) = self.flows.get_mut(fid) {
            flow.cc.apply_rate(bits_per_sec, burst, now);
        }
    }

    /// Sends one segment ignoring the peer window — the zero-window
    /// persist probe, triggered by the slow path when a flow has pending
    /// data, nothing in flight, and a shut window (a lost window update
    /// would otherwise deadlock the connection).
    pub fn window_probe(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("probe");
        let cycles = self.charge(acct, Module::Tcp, self.costs.tcp_tx_seg)
            + self.charge(acct, Module::Driver, self.costs.drv_tx);
        let mss = self.mss as u64;
        let Some(flow) = self.flows.get_mut(fid) else {
            return 0;
        };
        let off = flow.nxt_off();
        let avail = flow.snd.tx.end_offset().saturating_sub(off);
        let n = avail.min(mss);
        if n == 0 {
            return cycles;
        }
        let mut ok = true;
        let payload = PayloadBuf::with(n as usize, |dst| {
            ok = flow.snd.tx.read_into(off, dst).is_ok();
        });
        if !ok {
            debug_assert!(false, "probe offset within tx ring");
            return cycles;
        }
        let mut h = TcpHeader::new(
            flow.conn.key.local_port,
            flow.conn.key.remote_port,
            flow.seq_of(off),
            flow.rcv_seq_of(flow.rcv.rx.end_offset()),
            TcpFlags::ACK | TcpFlags::PSH,
        );
        h.window = (flow.adv_window() >> TAS_WSCALE).min(u16::MAX as u64) as u16;
        h.options.timestamp = Some((now.as_micros() as u32, flow.conn.ts_recent));
        let mut seg = Segment::tcp(
            self.local_mac,
            flow.conn.peer_mac,
            self.local_ip,
            flow.conn.key.remote_ip,
            h,
            payload,
            false,
        );
        seg.ip.ecn = Ecn::Ect0;
        flow.snd.note_sent(n);
        self.stats.segs_tx += 1;
        self.out.packets.push(seg);
        cycles
    }

    /// Slow-path-triggered retransmission: reset the flow's sender state
    /// and retransmit from the left window edge.
    pub fn trigger_retransmit(&mut self, now: SimTime, fid: u32, acct: &mut CycleAccount) -> u64 {
        #[cfg(feature = "profile")]
        let _prof = tas_telemetry::profile::guard("rexmit");
        if let Some(flow) = self.flows.get_mut(fid) {
            #[cfg(feature = "trace")]
            trace_fp(
                now,
                tas_telemetry::TraceEvent::Retransmit {
                    flow: flow.conn.key,
                    kind: "timeout",
                    seq: flow.seq_of(flow.snd.tx.start_offset()),
                },
            );
            flow.snd.rewind_for_retransmit();
            self.try_tx(now, fid, acct)
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket};
    use tas_proto::FlowKey;
    use tas_shm::ByteRing;

    const MSS: u32 = 1448;

    fn fp() -> FastPath {
        FastPath::new(
            Ipv4Addr::new(10, 0, 0, 1),
            MacAddr::for_host(1),
            MSS,
            TasCosts::default(),
        )
    }

    fn install(fp: &mut FastPath) -> u32 {
        let flow = FlowState {
            conn: FpConnMgmt::new(
                42,
                3,
                FlowKey::new(
                    Ipv4Addr::new(10, 0, 0, 1),
                    80,
                    Ipv4Addr::new(10, 0, 0, 2),
                    5000,
                ),
                MacAddr::for_host(2),
                0,
            ),
            snd: FpSendRel::new(ByteRing::new(8192), 10_000),
            rcv: FpRecvRel::new(ByteRing::new(8192), 20_000),
            fc: FpFlowCtrl::new(64 * 1024, 0),
            cc: FpCongCtrl::new(RateBucket::unlimited()),
        };
        fp.install_flow(flow)
    }

    /// A data segment from the peer (10.0.0.2:5000 -> 10.0.0.1:80).
    fn data_seg(seq: u32, payload: &[u8], ce: bool) -> Segment {
        let mut h = TcpHeader::new(5000, 80, seq, 10_001, TcpFlags::ACK | TcpFlags::PSH);
        h.window = 60_000;
        h.options.timestamp = Some((777, 0));
        let mut s = Segment::tcp(
            MacAddr::for_host(2),
            MacAddr::for_host(1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            h,
            payload.to_vec(),
            true,
        );
        if ce {
            s.ip.ecn = Ecn::Ce;
        }
        s
    }

    fn ack_seg(ack: u32, window: u16, ece: bool) -> Segment {
        let mut h = TcpHeader::new(5000, 80, 20_001, ack, TcpFlags::ACK);
        h.window = window;
        if ece {
            h.flags |= TcpFlags::ECE;
        }
        h.options.timestamp = Some((778, 5));
        Segment::tcp(
            MacAddr::for_host(2),
            MacAddr::for_host(1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            h,
            Vec::new(),
            false,
        )
    }

    #[test]
    fn in_order_rx_deposits_and_acks() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        let t = SimTime::from_us(100);
        fp.rx_segment(t, data_seg(20_001, b"hello", false), &mut acct);
        // Payload is in the flow's rx ring.
        let flow = fp.flows.get_mut(fid).unwrap();
        assert_eq!(flow.rcv.rx.pop(16), b"hello");
        // One ACK staged, acking 20_006.
        assert_eq!(fp.out.packets.len(), 1);
        let ack = &fp.out.packets[0];
        assert_eq!(ack.tcp.ack, 20_006);
        assert!(ack.tcp.flags.contains(TcpFlags::ACK));
        assert!(!ack.tcp.flags.contains(TcpFlags::ECE));
        assert_eq!(ack.tcp.options.timestamp, Some((100, 777)));
        // One notice for context 3 with opaque 42.
        assert_eq!(
            fp.out.notices,
            vec![(
                3,
                RxNotice {
                    opaque: 42,
                    rx_bytes: 5,
                    tx_acked: 0
                }
            )]
        );
        assert!(acct.cycles(Module::Tcp) > 0);
        assert!(acct.cycles(Module::Driver) > 0);
    }

    #[test]
    fn ce_mark_echoed_on_ack() {
        let mut fp = fp();
        install(&mut fp);
        let mut acct = CycleAccount::new();
        fp.rx_segment(SimTime::from_us(1), data_seg(20_001, b"x", true), &mut acct);
        assert!(fp.out.packets[0].tcp.flags.contains(TcpFlags::ECE));
        // Next unmarked segment: echo clears (per-packet accuracy).
        fp.rx_segment(
            SimTime::from_us(2),
            data_seg(20_002, b"y", false),
            &mut acct,
        );
        assert!(!fp.out.packets[1].tcp.flags.contains(TcpFlags::ECE));
    }

    #[test]
    fn unknown_flow_and_control_flags_are_exceptions() {
        let mut fp = fp();
        install(&mut fp);
        let mut acct = CycleAccount::new();
        // SYN on a known flow: still an exception.
        let mut syn = data_seg(20_001, b"", false);
        syn.tcp.flags = TcpFlags::SYN;
        fp.rx_segment(SimTime::ZERO, syn, &mut acct);
        // Unknown 4-tuple.
        let mut unknown = data_seg(20_001, b"hi", false);
        unknown.tcp.src_port = 9999;
        fp.rx_segment(SimTime::ZERO, unknown, &mut acct);
        assert_eq!(fp.out.exceptions.len(), 2);
        assert_eq!(fp.stats.exceptions, 2);
        assert!(
            fp.out.packets.is_empty(),
            "no fast-path response to exceptions"
        );
    }

    #[test]
    fn ooo_single_interval_merge() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        // Bytes 5..10 arrive before 0..5.
        fp.rx_segment(SimTime::ZERO, data_seg(20_006, b"WORLD", false), &mut acct);
        {
            let flow = fp.flows.get(fid).unwrap();
            assert_eq!(flow.rcv.ooo_len, 5);
            assert_eq!(flow.rcv.ooo_start, 5);
        }
        // The dup-ACK still asks for 20_001.
        assert_eq!(fp.out.packets[0].tcp.ack, 20_001);
        // Gap fills: both chunks delivered, one merged notice.
        fp.rx_segment(SimTime::ZERO, data_seg(20_001, b"HELLO", false), &mut acct);
        let flow = fp.flows.get_mut(fid).unwrap();
        assert_eq!(flow.rcv.ooo_len, 0);
        assert_eq!(flow.rcv.rx.pop(16), b"HELLOWORLD");
        assert_eq!(fp.out.packets[1].tcp.ack, 20_011);
        let last = fp.out.notices.last().unwrap();
        assert_eq!(
            last.1.rx_bytes, 10,
            "merged interval notified as one segment"
        );
    }

    #[test]
    fn ooo_interval_extends_and_rejects_second_interval() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        fp.rx_segment(SimTime::ZERO, data_seg(20_011, b"cc", false), &mut acct);
        // Extend at tail.
        fp.rx_segment(SimTime::ZERO, data_seg(20_013, b"dd", false), &mut acct);
        // Extend at head.
        fp.rx_segment(SimTime::ZERO, data_seg(20_009, b"bb", false), &mut acct);
        {
            let flow = fp.flows.get(fid).unwrap();
            assert_eq!((flow.rcv.ooo_start, flow.rcv.ooo_len), (8, 6));
        }
        // A second, disjoint interval is dropped.
        fp.rx_segment(SimTime::ZERO, data_seg(20_050, b"zz", false), &mut acct);
        assert_eq!(fp.stats.drop_ooo, 1);
        // Fill the gap; everything up to offset 14 delivers.
        fp.rx_segment(
            SimTime::ZERO,
            data_seg(20_001, b"aaaaaaaa", false),
            &mut acct,
        );
        let flow = fp.flows.get_mut(fid).unwrap();
        assert_eq!(flow.rcv.rx.pop(32), b"aaaaaaaabbccdd");
    }

    #[test]
    fn rx_buffer_full_drops_packet() {
        let mut fp = fp();
        let fid = install(&mut fp);
        fp.flows.get_mut(fid).unwrap().rcv.rx = ByteRing::new(4);
        let mut acct = CycleAccount::new();
        fp.rx_segment(
            SimTime::ZERO,
            data_seg(20_001, b"toolong", false),
            &mut acct,
        );
        assert_eq!(fp.stats.drop_buf_full, 1);
        assert!(fp.out.packets.is_empty(), "dropped silently");
        assert!(fp.out.notices.is_empty());
    }

    #[test]
    fn tx_segments_and_ack_processing_free_buffer() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        let t = SimTime::from_us(10);
        // App wrote 3000 bytes (2 segments + 104).
        fp.flows
            .get_mut(fid)
            .unwrap()
            .snd
            .tx
            .append(&[9u8; 3000])
            .unwrap();
        fp.tx_command(t, fid, &mut acct);
        assert_eq!(fp.out.packets.len(), 3);
        assert_eq!(fp.out.packets[0].payload.len(), MSS as usize);
        assert_eq!(fp.out.packets[0].tcp.seq, 10_001);
        assert_eq!(fp.out.packets[1].tcp.seq, 10_001 + MSS);
        assert_eq!(fp.out.packets[2].payload.len(), 3000 - 2 * MSS as usize);
        assert_eq!(fp.out.packets[0].ip.ecn, Ecn::Ect0, "data is ECT(0)");
        let flow = fp.flows.get(fid).unwrap();
        assert_eq!(flow.snd.tx_sent, 3000);
        // Peer acks the first 1448: buffer space freed, notice posted.
        fp.rx_segment(
            t + SimTime::from_us(50),
            ack_seg(10_001 + MSS, 60_000, false),
            &mut acct,
        );
        let flow = fp.flows.get(fid).unwrap();
        assert_eq!(flow.snd.tx_sent, 3000 - MSS as u64);
        assert_eq!(flow.snd.tx.len(), 3000 - MSS as usize);
        let last = fp.out.notices.last().unwrap();
        assert_eq!(last.1.tx_acked, MSS);
        // RTT estimated from the timestamp echo (tsecr=5 -> 55us).
        assert_eq!(flow.conn.rtt_est_us, 55);
    }

    #[test]
    fn ecn_feedback_counted_for_slow_path() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        fp.flows
            .get_mut(fid)
            .unwrap()
            .snd
            .tx
            .append(&[9u8; 2000])
            .unwrap();
        fp.tx_command(SimTime::ZERO, fid, &mut acct);
        fp.rx_segment(
            SimTime::from_us(100),
            ack_seg(10_001 + 1448, 60_000, true),
            &mut acct,
        );
        let flow = fp.flows.get(fid).unwrap();
        assert_eq!(flow.cc.cnt_ackb, 1448);
        assert_eq!(flow.cc.cnt_ecnb, 1448);
    }

    #[test]
    fn triple_dupack_fast_retransmit() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        // Duplicate-ACK counting requires an unchanged window (RFC 5681);
        // make the flow's view match the ACKs the test sends.
        fp.flows.get_mut(fid).unwrap().fc.snd_wnd = 60_000;
        fp.flows
            .get_mut(fid)
            .unwrap()
            .snd
            .tx
            .append(&[7u8; 4000])
            .unwrap();
        fp.tx_command(SimTime::ZERO, fid, &mut acct);
        let first_sent = fp.out.packets.len();
        assert_eq!(first_sent, 3);
        // Three duplicate ACKs at the left edge.
        for i in 0..3 {
            fp.rx_segment(
                SimTime::from_us(10 + i),
                ack_seg(10_001, 60_000, false),
                &mut acct,
            );
        }
        assert_eq!(fp.stats.fast_rexmits, 1);
        let flow = fp.flows.get(fid).unwrap();
        assert_eq!(flow.cc.cnt_frexmits, 1);
        // Retransmission resent everything from the left edge.
        assert!(fp.out.packets.len() > first_sent);
        assert_eq!(fp.out.packets[first_sent].tcp.seq, 10_001);
    }

    #[test]
    fn peer_window_limits_tx() {
        let mut fp = fp();
        let fid = install(&mut fp);
        fp.flows.get_mut(fid).unwrap().fc.snd_wnd = 2000;
        let mut acct = CycleAccount::new();
        fp.flows
            .get_mut(fid)
            .unwrap()
            .snd
            .tx
            .append(&[1u8; 8000])
            .unwrap();
        fp.tx_command(SimTime::ZERO, fid, &mut acct);
        let flow = fp.flows.get(fid).unwrap();
        assert_eq!(flow.snd.tx_sent, 2000, "limited by peer window");
        assert_eq!(fp.out.packets.len(), 2);
    }

    #[test]
    fn rate_bucket_paces_and_arms_timer() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let t0 = SimTime::from_ms(1);
        {
            let flow = fp.flows.get_mut(fid).unwrap();
            // 8 Mbps = 1 MB/s; bucket starts with exactly one MSS credit.
            flow.cc.bucket = RateBucket::limited(8_000_000, 1 << 20, t0);
            flow.cc.bucket.tokens = MSS as u64;
            flow.snd.tx.append(&[2u8; 5000]).unwrap();
        }
        let mut acct = CycleAccount::new();
        fp.tx_command(t0, fid, &mut acct);
        assert_eq!(fp.out.packets.len(), 1, "one segment of credit");
        assert_eq!(fp.out.tx_timers.len(), 1, "pacing timer armed");
        let (tfid, at) = fp.out.tx_timers[0];
        assert_eq!(tfid, fid);
        // 1448 bytes at 1 MB/s ≈ 1.448 ms later.
        let dt = at - t0;
        assert!(
            dt >= SimTime::from_us(1400) && dt <= SimTime::from_us(1500),
            "pacing delay {dt}"
        );
        // Timer fires: next segment goes out.
        fp.out.tx_timers.clear();
        fp.tx_poll(at, fid, &mut acct);
        assert_eq!(fp.out.packets.len(), 2);
    }

    #[test]
    fn slow_path_retransmit_resets_sender() {
        let mut fp = fp();
        let fid = install(&mut fp);
        let mut acct = CycleAccount::new();
        fp.flows
            .get_mut(fid)
            .unwrap()
            .snd
            .tx
            .append(&[3u8; 1000])
            .unwrap();
        fp.tx_command(SimTime::ZERO, fid, &mut acct);
        assert_eq!(fp.out.packets.len(), 1);
        // Slow path decides the flow timed out.
        fp.trigger_retransmit(SimTime::from_ms(5), fid, &mut acct);
        assert_eq!(fp.out.packets.len(), 2);
        assert_eq!(fp.out.packets[1].tcp.seq, fp.out.packets[0].tcp.seq);
    }

    #[test]
    fn set_rate_converts_unlimited_bucket() {
        let mut fp = fp();
        let fid = install(&mut fp);
        fp.set_rate(fid, 100_000_000, 1 << 16, SimTime::ZERO);
        let flow = fp.flows.get(fid).unwrap();
        assert!(!flow.cc.bucket.is_unlimited());
        assert_eq!(flow.cc.bucket.rate_bps, 12_500_000);
    }
}
