//! Slow-path congestion-control policies: rate-based DCTCP and TIMELY.
//!
//! The slow path runs one control iteration per flow every control
//! interval τ (§3.2): it reads the congestion feedback the fast path
//! accumulated (`cnt_ackb`, `cnt_ecnb`, `cnt_frexmits`, `rtt_est`),
//! computes a new rate, and writes it back into the flow's bucket.
//!
//! The control *laws* live in the shared `tas-cc` crate (the rate facet
//! of [`tas_cc::CongCtrl`]) so the reference TCP engine and the TAS
//! slow path exercise one implementation; this module is the façade
//! that drains a flow's feedback counters into a [`tas_cc::RateFeedback`]
//! and runs the iteration over the flow's persistent `CcState`.

use crate::flow::FlowState;
use tas_cc::{Dctcp, Timely};

pub use tas_cc::{DctcpRateParams, TimelyParams};

/// MSS handed to the shared algorithm constructors. The rate facet never
/// reads it (it sizes the window facet's cwnd only), so any value works;
/// use the stack default for clarity.
const RATE_FACADE_MSS: u32 = 1448;

/// One rate-based DCTCP control iteration (paper §3.2 and §5.5).
///
/// Uses and resets the flow's accumulated feedback; returns the new rate
/// in bits/second, which the caller installs into the flow's bucket.
pub fn dctcp_rate_iteration(
    flow: &mut FlowState,
    current_bps: u64,
    interval_secs: f64,
    p: &DctcpRateParams,
) -> u64 {
    let rtt = flow.conn.rtt_est_us;
    let fb = flow.cc.take_feedback(rtt);
    let algo = Dctcp::with_rate_params(RATE_FACADE_MSS, *p);
    flow.cc.rate_iteration(&algo, fb, current_bps, interval_secs)
}

/// One TIMELY control iteration.
pub fn timely_iteration(flow: &mut FlowState, current_bps: u64, p: &TimelyParams) -> u64 {
    let rtt = flow.conn.rtt_est_us;
    let fb = flow.cc.take_feedback(rtt);
    let algo = Timely::with_params(RATE_FACADE_MSS, *p);
    // TIMELY is interval-free: the gradient normalizes by RTT, not τ.
    flow.cc.rate_iteration(&algo, fb, current_bps, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{
        FlowState, FpCongCtrl, FpConnMgmt, FpFlowCtrl, FpRecvRel, FpSendRel, RateBucket,
    };
    use std::net::Ipv4Addr;
    use tas_proto::FlowKey;
    use tas_shm::ByteRing;

    fn flow() -> FlowState {
        let mut conn = FpConnMgmt::new(
            0,
            0,
            FlowKey::new(Ipv4Addr::UNSPECIFIED, 1, Ipv4Addr::UNSPECIFIED, 2),
            tas_proto::MacAddr::for_host(1),
            0,
        );
        conn.rtt_est_us = 100;
        FlowState {
            conn,
            snd: FpSendRel::new(ByteRing::new(64), 0),
            rcv: FpRecvRel::new(ByteRing::new(64), 0),
            fc: FpFlowCtrl::new(0, 0),
            cc: FpCongCtrl::new(RateBucket::unlimited()),
        }
    }

    const INTERVAL: f64 = 200e-6;

    #[test]
    fn dctcp_slow_start_doubles() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        // Sending flat out: measured rate matches current.
        f.cc.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert_eq!(r, 2_000_000_000);
        assert!(f.cc.state.slow_start);
    }

    #[test]
    fn dctcp_congestion_exits_slow_start_and_reduces() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc.state.alpha = 1.0;
        f.cc.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        f.cc.cnt_ecnb = f.cc.cnt_ackb; // Fully marked.
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert!(!f.cc.state.slow_start);
        // alpha stays 1.0 (fully marked) -> rate halves.
        assert!((r as f64 - 0.5e9).abs() / 0.5e9 < 0.01, "rate {r}");
    }

    #[test]
    fn dctcp_reduction_proportional_to_alpha() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc.state.slow_start = false;
        f.cc.state.alpha = 0.0;
        // 10% of bytes marked: alpha moves to g*0.1, reduction tiny.
        f.cc.cnt_ackb = 1_000_000;
        f.cc.cnt_ecnb = 100_000;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        // Measured = 1e6*8/200us = 40 Gbps, no cap. Reduction by alpha/2
        // where alpha = 0.1/16.
        let want = 1e9 * (1.0 - 0.1 / 16.0 / 2.0);
        assert!(
            (r as f64 - want).abs() / want < 0.01,
            "rate {r} want {want}"
        );
    }

    #[test]
    fn dctcp_additive_increase_when_clean() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc.state.slow_start = false;
        f.cc.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert_eq!(r, 1_000_000_000 + 10_000_000);
    }

    #[test]
    fn dctcp_caps_at_measured_rate() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc.state.slow_start = false;
        // Flow only achieved 100 Mbps although the rate allows 1 Gbps.
        f.cc.cnt_ackb = (100e6 * INTERVAL / 8.0) as u64;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        // Capped to 1.2 * 100 Mbps, then additive increase.
        assert!(r <= 130_000_000, "rate {r} must be capped near 120 Mbps");
    }

    #[test]
    fn dctcp_loss_halves() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc.state.slow_start = false;
        f.cc.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        f.cc.cnt_frexmits = 2;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert_eq!(r, 500_000_000);
    }

    #[test]
    fn dctcp_idle_flow_holds_rate_via_clamp() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc.state.slow_start = false;
        // No feedback at all: no measured rate, no increase.
        let r = dctcp_rate_iteration(&mut f, 500_000_000, INTERVAL, &p);
        assert_eq!(r, 500_000_000);
    }

    #[test]
    fn timely_low_rtt_additive_increase() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.cc.state.slow_start = false;
        f.conn.rtt_est_us = 30; // Below t_low.
        f.cc.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 1_000_000_000, &p);
        assert_eq!(r, 1_010_000_000);
    }

    #[test]
    fn timely_high_rtt_multiplicative_decrease() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.cc.state.slow_start = false;
        f.conn.rtt_est_us = 1000; // Above t_high.
        f.cc.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 1_000_000_000, &p);
        let want = 1e9 * (1.0 - 0.8 * (1.0 - 0.5));
        assert!((r as f64 - want).abs() / want < 0.01, "rate {r}");
    }

    #[test]
    fn timely_gradient_response() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.cc.state.slow_start = false;
        f.cc.state.prev_rtt_us = 100;
        f.conn.rtt_est_us = 120; // Rising RTT between thresholds.
        f.cc.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 1_000_000_000, &p);
        assert!(r < 1_000_000_000, "rising gradient must decrease: {r}");
        // Falling RTT: increase.
        f.cc.state.prev_rtt_us = 120;
        f.conn.rtt_est_us = 100;
        f.cc.cnt_ackb = 1000;
        let r2 = timely_iteration(&mut f, r, &p);
        assert!(r2 > r);
    }

    #[test]
    fn timely_slow_start_until_rtt_rises() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.conn.rtt_est_us = 30;
        f.cc.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 100_000_000, &p);
        assert_eq!(r, 200_000_000);
        assert!(f.cc.state.slow_start);
        f.conn.rtt_est_us = 80; // Above t_low: exit slow start.
        f.cc.cnt_ackb = 1000;
        timely_iteration(&mut f, r, &p);
        assert!(!f.cc.state.slow_start);
    }
}
