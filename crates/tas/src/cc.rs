//! Slow-path congestion-control policies: rate-based DCTCP and TIMELY.
//!
//! The slow path runs one control iteration per flow every control
//! interval τ (§3.2): it reads the congestion feedback the fast path
//! accumulated (`cnt_ackb`, `cnt_ecnb`, `cnt_frexmits`, `rtt_est`),
//! computes a new rate, and writes it back into the flow's bucket. The
//! control *law* here is pure (flow state in, rate out) so it is unit-
//! testable without a network.

use crate::flow::FlowState;

/// Parameters for the rate-based DCTCP control law.
#[derive(Clone, Copy, Debug)]
pub struct DctcpRateParams {
    /// EWMA gain `g` for alpha.
    pub gain: f64,
    /// Additive-increase step in bits/second (paper: 10 Mbps).
    pub ai_bps: u64,
    /// Minimum rate floor.
    pub min_bps: u64,
    /// Maximum rate (link speed).
    pub max_bps: u64,
    /// Headroom factor over the measured send rate (paper: rate may not
    /// exceed 1.2× the flow's achieved rate).
    pub cap_factor: f64,
}

impl Default for DctcpRateParams {
    fn default() -> Self {
        DctcpRateParams {
            gain: 1.0 / 16.0,
            ai_bps: 10_000_000,
            min_bps: 1_000_000,
            max_bps: 10_000_000_000,
            cap_factor: 1.2,
        }
    }
}

/// One rate-based DCTCP control iteration (paper §3.2 and §5.5).
///
/// Uses and resets the flow's accumulated feedback; returns the new rate
/// in bits/second, which the caller installs into the flow's bucket.
pub fn dctcp_rate_iteration(
    flow: &mut FlowState,
    current_bps: u64,
    interval_secs: f64,
    p: &DctcpRateParams,
) -> u64 {
    let ackb = flow.cnt_ackb;
    let ecnb = flow.cnt_ecnb;
    let frexmits = flow.cnt_frexmits;
    flow.cnt_ackb = 0;
    flow.cnt_ecnb = 0;
    flow.cnt_frexmits = 0;

    let mut rate = current_bps as f64;
    // "We ensure at the beginning of the control loop that the rate is no
    // more than 20% higher than the flow's send rate" — prevents unbounded
    // growth without congestion. The send rate is smoothed over intervals:
    // with sub-millisecond intervals a single flow delivers only a couple
    // of segments per interval and the raw sample is quantization noise.
    if ackb > 0 {
        let measured = ackb as f64 * 8.0 / interval_secs;
        flow.cc_rate_ewma = if flow.cc_rate_ewma == 0.0 {
            measured
        } else {
            0.8 * flow.cc_rate_ewma + 0.2 * measured
        };
        rate = rate.min(flow.cc_rate_ewma.max(measured) * p.cap_factor);
    }
    // Update alpha from the marked fraction.
    if ackb > 0 {
        let f = (ecnb as f64 / ackb as f64).min(1.0);
        flow.cc_alpha = (1.0 - p.gain) * flow.cc_alpha + p.gain * f;
    }
    let congested = ecnb > 0 || frexmits > 0;
    if congested {
        flow.cc_slow_start = false;
    }
    if frexmits > 0 {
        // Loss: halve (the DCTCP response to loss is NewReno's).
        rate /= 2.0;
    } else if ecnb > 0 {
        // DCTCP control law on rates: decrease proportional to the marked
        // fraction.
        rate *= 1.0 - flow.cc_alpha / 2.0;
    } else if flow.cc_slow_start {
        // Slow start: double every control interval.
        rate *= 2.0;
    } else if ackb > 0 {
        // Additive increase.
        rate += p.ai_bps as f64;
    }
    (rate as u64).clamp(p.min_bps, p.max_bps)
}

/// Parameters for TIMELY (Mittal et al., SIGCOMM 2015), adapted for TCP
/// by adding slow start (paper §2).
#[derive(Clone, Copy, Debug)]
pub struct TimelyParams {
    /// Low RTT threshold: below it, increase additively.
    pub t_low_us: u32,
    /// High RTT threshold: above it, decrease multiplicatively.
    pub t_high_us: u32,
    /// Multiplicative decrease factor β.
    pub beta: f64,
    /// Additive increase step in bits/second.
    pub delta_bps: u64,
    /// Minimum RTT for gradient normalization.
    pub min_rtt_us: u32,
    /// Rate floor.
    pub min_bps: u64,
    /// Rate ceiling.
    pub max_bps: u64,
}

impl Default for TimelyParams {
    fn default() -> Self {
        TimelyParams {
            t_low_us: 50,
            t_high_us: 500,
            beta: 0.8,
            delta_bps: 10_000_000,
            min_rtt_us: 20,
            min_bps: 1_000_000,
            max_bps: 10_000_000_000,
        }
    }
}

/// One TIMELY control iteration.
pub fn timely_iteration(flow: &mut FlowState, current_bps: u64, p: &TimelyParams) -> u64 {
    let ackb = flow.cnt_ackb;
    flow.cnt_ackb = 0;
    flow.cnt_ecnb = 0;
    flow.cnt_frexmits = 0;
    if ackb == 0 {
        // No feedback this interval: hold.
        return current_bps;
    }
    let rtt = flow.rtt_est_us.max(1);
    let prev = if flow.cc_prev_rtt_us == 0 {
        rtt
    } else {
        flow.cc_prev_rtt_us
    };
    flow.cc_prev_rtt_us = rtt;
    let mut rate = current_bps as f64;
    if flow.cc_slow_start {
        if rtt > p.t_low_us {
            flow.cc_slow_start = false;
        } else {
            return ((rate * 2.0) as u64).clamp(p.min_bps, p.max_bps);
        }
    }
    if rtt < p.t_low_us {
        rate += p.delta_bps as f64;
    } else if rtt > p.t_high_us {
        rate *= 1.0 - p.beta * (1.0 - p.t_high_us as f64 / rtt as f64);
    } else {
        let gradient = (rtt as f64 - prev as f64) / p.min_rtt_us as f64;
        if gradient <= 0.0 {
            rate += p.delta_bps as f64;
        } else {
            rate *= 1.0 - p.beta * gradient.min(1.0);
        }
    }
    (rate as u64).clamp(p.min_bps, p.max_bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowState, RateBucket};
    use std::net::Ipv4Addr;
    use tas_proto::FlowKey;
    use tas_shm::ByteRing;

    fn flow() -> FlowState {
        FlowState {
            opaque: 0,
            context: 0,
            bucket: RateBucket::unlimited(),
            key: FlowKey::new(Ipv4Addr::UNSPECIFIED, 1, Ipv4Addr::UNSPECIFIED, 2),
            peer_mac: tas_proto::MacAddr::for_host(1),
            rx: ByteRing::new(64),
            tx: ByteRing::new(64),
            tx_sent: 0,
            max_sent_off: 0,
            iss: 0,
            irs: 0,
            snd_wnd: 0,
            peer_wscale: 0,
            dupack_cnt: 0,
            ooo_start: 0,
            ooo_len: 0,
            cnt_ackb: 0,
            cnt_ecnb: 0,
            cnt_frexmits: 0,
            rtt_est_us: 100,
            ts_recent: 0,
            cwnd: u64::MAX,
            last_seg_ce: false,
            tx_timer_armed: false,
            win_closed: false,
            last_una_off: 0,
            stall_intervals: 0,
            cc_alpha: 1.0,
            cc_rate_ewma: 0.0,
            cc_slow_start: true,
            cc_prev_rtt_us: 0,
            closing: false,
        }
    }

    const INTERVAL: f64 = 200e-6;

    #[test]
    fn dctcp_slow_start_doubles() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        // Sending flat out: measured rate matches current.
        f.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert_eq!(r, 2_000_000_000);
        assert!(f.cc_slow_start);
    }

    #[test]
    fn dctcp_congestion_exits_slow_start_and_reduces() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc_alpha = 1.0;
        f.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        f.cnt_ecnb = f.cnt_ackb; // Fully marked.
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert!(!f.cc_slow_start);
        // alpha stays 1.0 (fully marked) -> rate halves.
        assert!((r as f64 - 0.5e9).abs() / 0.5e9 < 0.01, "rate {r}");
    }

    #[test]
    fn dctcp_reduction_proportional_to_alpha() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc_slow_start = false;
        f.cc_alpha = 0.0;
        // 10% of bytes marked: alpha moves to g*0.1, reduction tiny.
        f.cnt_ackb = 1_000_000;
        f.cnt_ecnb = 100_000;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        // Measured = 1e6*8/200us = 40 Gbps, no cap. Reduction by alpha/2
        // where alpha = 0.1/16.
        let want = 1e9 * (1.0 - 0.1 / 16.0 / 2.0);
        assert!(
            (r as f64 - want).abs() / want < 0.01,
            "rate {r} want {want}"
        );
    }

    #[test]
    fn dctcp_additive_increase_when_clean() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc_slow_start = false;
        f.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert_eq!(r, 1_000_000_000 + 10_000_000);
    }

    #[test]
    fn dctcp_caps_at_measured_rate() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc_slow_start = false;
        // Flow only achieved 100 Mbps although the rate allows 1 Gbps.
        f.cnt_ackb = (100e6 * INTERVAL / 8.0) as u64;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        // Capped to 1.2 * 100 Mbps, then additive increase.
        assert!(r <= 130_000_000, "rate {r} must be capped near 120 Mbps");
    }

    #[test]
    fn dctcp_loss_halves() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc_slow_start = false;
        f.cnt_ackb = (1e9 * INTERVAL / 8.0) as u64;
        f.cnt_frexmits = 2;
        let r = dctcp_rate_iteration(&mut f, 1_000_000_000, INTERVAL, &p);
        assert_eq!(r, 500_000_000);
    }

    #[test]
    fn dctcp_idle_flow_holds_rate_via_clamp() {
        let mut f = flow();
        let p = DctcpRateParams::default();
        f.cc_slow_start = false;
        // No feedback at all: no measured rate, no increase.
        let r = dctcp_rate_iteration(&mut f, 500_000_000, INTERVAL, &p);
        assert_eq!(r, 500_000_000);
    }

    #[test]
    fn timely_low_rtt_additive_increase() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.cc_slow_start = false;
        f.rtt_est_us = 30; // Below t_low.
        f.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 1_000_000_000, &p);
        assert_eq!(r, 1_010_000_000);
    }

    #[test]
    fn timely_high_rtt_multiplicative_decrease() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.cc_slow_start = false;
        f.rtt_est_us = 1000; // Above t_high.
        f.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 1_000_000_000, &p);
        let want = 1e9 * (1.0 - 0.8 * (1.0 - 0.5));
        assert!((r as f64 - want).abs() / want < 0.01, "rate {r}");
    }

    #[test]
    fn timely_gradient_response() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.cc_slow_start = false;
        f.cc_prev_rtt_us = 100;
        f.rtt_est_us = 120; // Rising RTT between thresholds.
        f.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 1_000_000_000, &p);
        assert!(r < 1_000_000_000, "rising gradient must decrease: {r}");
        // Falling RTT: increase.
        f.cc_prev_rtt_us = 120;
        f.rtt_est_us = 100;
        f.cnt_ackb = 1000;
        let r2 = timely_iteration(&mut f, r, &p);
        assert!(r2 > r);
    }

    #[test]
    fn timely_slow_start_until_rtt_rises() {
        let mut f = flow();
        let p = TimelyParams::default();
        f.rtt_est_us = 30;
        f.cnt_ackb = 1000;
        let r = timely_iteration(&mut f, 100_000_000, &p);
        assert_eq!(r, 200_000_000);
        assert!(f.cc_slow_start);
        f.rtt_est_us = 80; // Above t_low: exit slow start.
        f.cnt_ackb = 1000;
        timely_iteration(&mut f, r, &p);
        assert!(!f.cc_slow_start);
    }
}
