//! A TAS host: NIC + fast-path cores + slow path + libTAS + application.
//!
//! [`TasHost`] is one simulation agent representing a machine running TAS
//! as its OS network service. It wires together:
//!
//! * the NIC (RSS-steered multi-queue receive, serialized transmit),
//! * a pool of fast-path cores (one RX queue each; idle cores block after
//!   10 ms and wake with a kernel-notification penalty),
//! * the slow-path thread on its own (partially used) core,
//! * application cores, one context queue each, running the [`App`]
//!   against either the POSIX-sockets or low-level libTAS API,
//! * the workload-proportionality controller (§3.4): utilization
//!   monitoring, core add/remove, eager RSS redirection-table rewrites.
//!
//! Timing model: work is charged to the owning core's busy-until timeline
//! (see `tas-cpusim`); effects — packets, context-queue notices, app
//! handler invocations — materialize when the charging core finishes them.

use crate::config::{ApiKind, TasConfig};
use crate::fastpath::{FastPath, RxNotice};
use crate::slowpath::{SlowPath, SpAppEvent};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tas_cpusim::{Core, CorePool, CycleAccount, Module};
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_netsim::rss::hash_tuple;
use tas_netsim::{HostNic, NetMsg, NicConfig};
#[cfg(feature = "trace")]
use tas_proto::FlowKey;
use tas_proto::{MacAddr, Segment, TcpFlags};
use tas_shm::ByteRing;
use tas_sim::{
    impl_as_any, Agent, CoreUtilSeries, CounterId, Ctx, Event, Registry, Scope, SeriesRecorder,
    SimTime, TimeSeries, TimerId,
};

/// Timer kinds used by [`TasHost`].
pub mod timers {
    /// Host initialization (inject once at start).
    pub const INIT: u32 = 0;
    /// Fast-path pacing timer; `data` = flow id.
    pub const FP_TX: u32 = 1;
    /// Slow-path control loop.
    pub const SP_CTRL: u32 = 2;
    /// Proportionality monitor.
    pub const PROP: u32 = 3;
    /// Application timer; `data` = (context << 48) | token.
    pub const APP: u32 = 4;
    /// Deferred application event delivery; `data` = context.
    pub const APP_RUN: u32 = 5;
    /// Deferred fast-path command execution.
    pub const FP_CMD: u32 = 6;
    /// Deferred slow-path work execution.
    pub const SP_RUN: u32 = 7;
}

/// Latency for waking a blocked fast-path core (eventfd + schedule).
const FP_WAKE_LATENCY: SimTime = SimTime::from_us(3);
/// App cores idle longer than this sleep in epoll and pay a wake.
const APP_IDLE_SLEEP: SimTime = SimTime::from_us(100);
/// Latency for waking a sleeping app thread.
const APP_WAKE_LATENCY: SimTime = SimTime::from_us(2);

#[derive(Debug, Default)]
struct SockState {
    fid: Option<u32>,
    context: u16,
    peer_closed: bool,
    closed_evt_sent: bool,
    want_write: bool,
    /// Unread data handed back when the flow detached.
    spill: Option<ByteRing>,
}

/// Emits a flight-recorder record.
#[cfg(feature = "trace")]
fn trace_host(site: &'static str, t: SimTime, ev: tas_telemetry::TraceEvent) {
    tas_telemetry::emit(|| tas_telemetry::TraceRecord { t, site, ev });
}

/// Stamps one hop of a payload range's journey for the span profiler.
/// `flow` must be the data sender's perspective (the canonical span key);
/// `wait` is the time the unit queued at this hop before service.
#[cfg(feature = "trace")]
fn trace_stage(
    site: &'static str,
    t: SimTime,
    stage: tas_telemetry::Stage,
    flow: FlowKey,
    seq: u32,
    len: u32,
    wait: SimTime,
) {
    tas_telemetry::emit(|| tas_telemetry::TraceRecord {
        t,
        site,
        ev: tas_telemetry::TraceEvent::Stage {
            stage,
            flow,
            seq,
            len,
            wait_ns: wait.as_nanos(),
        },
    });
}

enum FpCmd {
    Tx(u32),
    RxBump(u32),
}

enum SpCmd {
    Connect {
        sock: SockId,
        ip: Ipv4Addr,
        port: u16,
    },
    Close {
        sock: SockId,
    },
}

/// Deferred work collected while an app handler runs.
#[derive(Default)]
struct Frame {
    context: u16,
    now: SimTime,
    api_cycles: u64,
    app_cycles: u64,
    fp_cmds: Vec<FpCmd>,
    sp_cmds: Vec<SpCmd>,
    timers: Vec<(SimTime, u64)>,
    posts: Vec<(u16, u64)>,
}

struct Inner {
    cfg: TasConfig,
    ip: Ipv4Addr,
    nic: HostNic,
    fp: FastPath,
    sp: SlowPath,
    fp_cores: CorePool,
    active_fp: usize,
    sp_core: Core,
    app_cores: CorePool,
    socks: Vec<SockState>,
    /// Flow-id → socket lookup: point lookups only, but BTreeMap so any
    /// future iteration (debug dumps, teardown sweeps) is deterministic.
    fid_to_sock: BTreeMap<u32, SockId>,
    next_context: u16,
    acct: CycleAccount,
    started: bool,
    /// True when this host's cycles are attributed by the profiler. Only
    /// the host under measurement is enabled; all others disarm the
    /// thread-local profiler before running so their work cannot bleed
    /// into the profiled host's tree.
    #[cfg(feature = "profile")]
    prof: bool,
    /// Host-level metric registry.
    reg: Registry,
    c_drop_backlog: CounterId,
    c_fp_wakes: CounterId,
    c_scale_events: CounterId,
    c_app_bytes: CounterId,
    core_series: TimeSeries,
    /// Mean fast-path utilization sampled by the proportionality monitor.
    util_series: TimeSeries,
    /// Fixed-cadence queue-depth/occupancy sampler (sim-clock grid).
    series: SeriesRecorder,
    /// Per-fast-path-core utilization, sampled on the same 1 ms grid.
    fp_util: CoreUtilSeries,
    frame: Frame,
    /// Deferred app events per context (drained by APP_RUN timers). A
    /// cross-component hop must not execute at a future timestamp — that
    /// would reserve a core ahead of time and block earlier arrivals — so
    /// every hop is queued here and woken by a timer at its ready time.
    app_q: Vec<std::collections::VecDeque<AppEvent>>,
    /// Deferred fast-path commands (drained by FP_CMD timers).
    fp_q: std::collections::VecDeque<FpCmd>,
    /// Deferred slow-path work (drained by SP_RUN timers).
    sp_q: std::collections::VecDeque<SpWork>,
    /// Live pacing-timer handle per flow. Cancelled on detach so a torn-
    /// down (possibly recycled) flow id leaves no ghost FP_TX timer in
    /// the event queue.
    fp_tx_timers: BTreeMap<u32, TimerId>,
    /// Recycled flush buffers: capacity survives across flushes so the
    /// steady-state drain path never allocates.
    scratch: FlushScratch,
}

#[cfg(feature = "profile")]
impl Inner {
    /// Arms cycle attribution for one of this host's cores — or disarms
    /// the thread-local profiler when this host is not the one being
    /// profiled, so its cycles are dropped rather than misattributed.
    /// Arming also discards charges staged by code whose work was never
    /// run (see `tas_telemetry::profile::set_core`).
    fn prof_arm(&self, group: &'static str, idx: u32) {
        if self.prof {
            tas_telemetry::profile::set_core(group, idx);
        } else {
            tas_telemetry::profile::disarm();
        }
    }
}

#[derive(Default)]
struct FlushScratch {
    fp_packets: Vec<Segment>,
    fp_notices: Vec<(u16, RxNotice)>,
    fp_exceptions: Vec<Segment>,
    fp_tx_timers: Vec<(u32, SimTime)>,
    sp_packets: Vec<Segment>,
    sp_events: Vec<SpAppEvent>,
}

/// Moves `src`'s contents into the recycled buffer `scratch` (which must
/// be empty), leaving `src` empty but with its capacity intact.
fn take_recycled<T>(src: &mut Vec<T>, scratch: &mut Vec<T>) -> Vec<T> {
    debug_assert!(scratch.is_empty(), "scratch must be drained before reuse");
    std::mem::swap(src, scratch);
    std::mem::take(scratch)
}

enum SpWork {
    Exception(Segment),
    Connect {
        sock: SockId,
        ip: Ipv4Addr,
        port: u16,
    },
    Close {
        sock: SockId,
    },
}

/// A host running TAS (one simulation agent).
pub struct TasHost {
    inner: Inner,
    app: Option<Box<dyn App>>,
    /// Tenant identity assigned by a multi-tenant harness; `None` until
    /// [`TasHost::set_tenant`] tags the host.
    tenant: Option<u32>,
}

impl TasHost {
    /// Creates a TAS host. The harness must inject a [`timers::INIT`]
    /// timer at start time so the application's `on_start` runs and the
    /// control loops arm.
    pub fn new(
        ip: Ipv4Addr,
        mac: MacAddr,
        mut nic_cfg: NicConfig,
        cfg: TasConfig,
        uplink: tas_sim::AgentId,
        app: Box<dyn App>,
    ) -> Self {
        assert!(cfg.app_cores >= 1, "a TAS host needs at least one app core");
        assert!(
            cfg.max_fp_cores >= 1,
            "a TAS host needs at least one fast-path core"
        );
        nic_cfg.rx_queues = cfg.max_fp_cores;
        let nic = HostNic::new(mac, nic_cfg, uplink);
        let mut fp = FastPath::new(ip, mac, cfg.mss, cfg.costs);
        fp.ooo_rx = cfg.ooo_rx;
        let sp = SlowPath::new(ip, mac, &cfg);
        let fp_cores = CorePool::new(cfg.max_fp_cores, cfg.freq_hz);
        let app_cores = CorePool::new(cfg.app_cores, cfg.freq_hz);
        let sp_core = Core::new(cfg.freq_hz);
        let active_fp = cfg.initial_fp_cores.clamp(1, cfg.max_fp_cores);
        let cfg_app_cores = cfg.app_cores;
        let cfg_max_fp = cfg.max_fp_cores;
        let mut reg = Registry::new();
        let c_drop_backlog = reg.counter("host.drop_backlog", Scope::Global);
        let c_fp_wakes = reg.counter("host.fp_wakes", Scope::Global);
        let c_scale_events = reg.counter("host.scale_events", Scope::Global);
        let c_app_bytes = reg.counter("app.bytes_delivered", Scope::Global);
        TasHost {
            inner: Inner {
                cfg,
                ip,
                nic,
                fp,
                sp,
                fp_cores,
                active_fp,
                sp_core,
                app_cores,
                socks: Vec::new(),
                fid_to_sock: BTreeMap::new(),
                next_context: 0,
                acct: CycleAccount::new(),
                started: false,
                #[cfg(feature = "profile")]
                prof: false,
                reg,
                c_drop_backlog,
                c_fp_wakes,
                c_scale_events,
                c_app_bytes,
                core_series: TimeSeries::new(),
                util_series: TimeSeries::new(),
                series: SeriesRecorder::new(SimTime::from_ms(1)),
                fp_util: CoreUtilSeries::new(cfg_max_fp),
                frame: Frame::default(),
                fp_tx_timers: BTreeMap::new(),
                scratch: FlushScratch::default(),
                app_q: (0..cfg_app_cores)
                    .map(|_| std::collections::VecDeque::new())
                    .collect(),
                fp_q: std::collections::VecDeque::new(),
                sp_q: std::collections::VecDeque::new(),
            },
            app: Some(app),
            tenant: None,
        }
    }

    // ------------------------------------------------------------------
    // Harness accessors.

    /// Tags this host with a tenant identity. Tenant-scoped counters are
    /// re-emitted under [`Scope::Tenant`] in [`TasHost::telemetry_snapshot`]
    /// so multi-tenant harnesses can attribute flows and work per tenant.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = Some(tenant);
    }

    /// The tenant identity, if one was assigned.
    pub fn tenant(&self) -> Option<u32> {
        self.tenant
    }

    /// The host's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.inner.ip
    }

    /// Opts this host into cycle-attribution profiling: its core runs
    /// arm the thread-local profiler with `fp<i>`/`sp0`/`app<j>`
    /// identities. Hosts that were never enabled disarm the profiler
    /// before running instead, so enabling exactly one host on a thread
    /// profiles exactly that host.
    #[cfg(feature = "profile")]
    pub fn enable_profiling(&mut self) {
        self.inner.prof = true;
    }

    /// Cycle/instruction account (Tables 1–2).
    pub fn account(&self) -> &CycleAccount {
        &self.inner.acct
    }

    /// Mutable account access (harnesses reset between warmup/measure).
    pub fn account_mut(&mut self) -> &mut CycleAccount {
        &mut self.inner.acct
    }

    /// Fast-path counters.
    pub fn fp_stats(&self) -> crate::fastpath::FpStats {
        self.inner.fp.stats
    }

    /// Slow-path counters.
    pub fn sp_stats(&self) -> crate::slowpath::SpStats {
        self.inner.sp.stats
    }

    /// The host's metric registry (registry-backed host counters plus
    /// whatever per-core/per-flow series the run accumulated).
    pub fn registry(&self) -> &Registry {
        &self.inner.reg
    }

    /// A deterministic, ordered snapshot of every counter the host can
    /// see: the registry, the fast-/slow-path stat blocks, the NIC's
    /// fault-injector counters, and live-state gauges. Two same-seed runs
    /// produce byte-identical [`tas_sim::Snapshot::render_text`] output.
    pub fn telemetry_snapshot(&self) -> tas_sim::Snapshot {
        let mut snap = self.inner.reg.snapshot();
        let fp = &self.inner.fp.stats;
        snap.insert_counter("fp.pkts_rx", Scope::Global, fp.pkts_rx);
        snap.insert_counter("fp.segs_tx", Scope::Global, fp.segs_tx);
        snap.insert_counter("fp.acks_tx", Scope::Global, fp.acks_tx);
        snap.insert_counter("fp.exceptions", Scope::Global, fp.exceptions);
        snap.insert_counter("fp.drop_buf_full", Scope::Global, fp.drop_buf_full);
        snap.insert_counter("fp.drop_ooo", Scope::Global, fp.drop_ooo);
        snap.insert_counter("fp.bytes_rx", Scope::Global, fp.bytes_rx);
        snap.insert_counter("fp.fast_rexmits", Scope::Global, fp.fast_rexmits);
        snap.insert_counter("fp.timers_armed", Scope::Global, fp.timers_armed);
        snap.insert_counter("fp.tx_polls", Scope::Global, fp.tx_polls);
        let sp = &self.inner.sp.stats;
        snap.insert_counter("sp.established", Scope::Global, sp.established);
        snap.insert_counter("sp.closed", Scope::Global, sp.closed);
        snap.insert_counter("sp.handshake_rexmits", Scope::Global, sp.handshake_rexmits);
        snap.insert_counter("sp.timeout_rexmits", Scope::Global, sp.timeout_rexmits);
        snap.insert_counter("sp.exceptions", Scope::Global, sp.exceptions);
        snap.insert_counter("sp.dropped", Scope::Global, sp.dropped);
        for (k, v) in self.inner.nic.tx_fault_snapshot().iter() {
            snap.insert(k.name, k.scope, *v);
        }
        snap.insert_gauge("flows.live", Scope::Global, self.inner.fp.flows.len() as i64);
        snap.insert_gauge(
            "cores.active_fp",
            Scope::Global,
            self.inner.active_fp as i64,
        );
        // Tenant-tagged attribution: with one application per host, the
        // host's flow and connection totals are the tenant's.
        if let Some(t) = self.tenant {
            let scope = Scope::Tenant(t);
            snap.insert_gauge("tenant.flows_live", scope, self.inner.fp.flows.len() as i64);
            snap.insert_counter("tenant.established", scope, sp.established);
            snap.insert_counter("tenant.bytes_rx", scope, fp.bytes_rx);
        }
        snap
    }

    /// Currently active fast-path cores.
    pub fn active_fp_cores(&self) -> usize {
        self.inner.active_fp
    }

    /// Time series of (time, active fast-path cores) from the
    /// proportionality monitor (Fig. 14).
    pub fn core_series(&self) -> &TimeSeries {
        &self.inner.core_series
    }

    /// Time series of mean fast-path utilization over the active cores,
    /// sampled by the proportionality monitor at its 1 ms cadence.
    pub fn util_series(&self) -> &TimeSeries {
        &self.inner.util_series
    }

    /// Fixed-cadence queue-depth/occupancy recorder: NIC RX backlog, shm
    /// ring occupancy, slow-path queue depth, and active core count, all
    /// stamped on a deterministic sim-clock grid (Fig. 14-style plots are
    /// built from this, not from ad-hoc prints).
    pub fn queue_series(&self) -> &SeriesRecorder {
        &self.inner.series
    }

    /// Per-fast-path-core utilization time series on the 1 ms sampling
    /// grid (the utilization-attribution series the cpuprof bench
    /// digests into per-core quantiles).
    pub fn fp_util_series(&self) -> &CoreUtilSeries {
        &self.inner.fp_util
    }

    /// Number of installed fast-path flows.
    pub fn flow_count(&self) -> usize {
        self.inner.fp.flows.len()
    }

    /// The host's NIC (e.g. for fault-injection counters in tests).
    pub fn nic(&self) -> &tas_netsim::HostNic {
        &self.inner.nic
    }

    /// Dumps per-flow diagnostic tuples (diagnostics).
    pub fn dump_flows(&self, n: usize) -> Vec<(u32, u64, u64, u64, u64, u32, u64)> {
        let mut out = Vec::new();
        for id in 0..65_535u32 {
            if out.len() >= n {
                break;
            }
            if let Some(f) = self.inner.fp.flows.get(id) {
                out.push((
                    id,
                    f.snd.tx.len() as u64,
                    f.snd.tx_sent,
                    f.cc.bucket.rate_bps.saturating_mul(8),
                    f.fc.snd_wnd,
                    f.conn.rtt_est_us,
                    f.snd.stall_intervals as u64,
                ));
            }
        }
        out
    }

    /// Sampled flow RTT estimates in microseconds (diagnostics).
    pub fn sample_rtts(&self, n: usize) -> Vec<u32> {
        let mut out = Vec::new();
        for id in 0..10_000u32 {
            if out.len() >= n {
                break;
            }
            if let Some(f) = self.inner.fp.flows.get(id) {
                out.push(f.conn.rtt_est_us);
            }
        }
        out
    }

    /// Busy time accumulated per fast-path core (diagnostics).
    pub fn fp_busy(&self) -> Vec<tas_sim::SimTime> {
        (0..self.inner.fp_cores.len())
            .map(|i| self.inner.fp_cores.core_ref(i).busy_total())
            .collect()
    }

    /// Busy time accumulated per app core (diagnostics).
    pub fn app_busy(&self) -> Vec<tas_sim::SimTime> {
        (0..self.inner.app_cores.len())
            .map(|i| self.inner.app_cores.core_ref(i).busy_total())
            .collect()
    }

    /// Exact cycles submitted per fast-path core since creation (the
    /// integer ground truth the attribution profiler conserves against).
    pub fn fp_busy_cycles(&self) -> Vec<u64> {
        (0..self.inner.fp_cores.len())
            .map(|i| self.inner.fp_cores.core_ref(i).busy_cycles())
            .collect()
    }

    /// Exact cycles submitted to the slow-path core since creation.
    pub fn sp_busy_cycles(&self) -> u64 {
        self.inner.sp_core.busy_cycles()
    }

    /// Exact cycles submitted per app core since creation.
    pub fn app_busy_cycles(&self) -> Vec<u64> {
        (0..self.inner.app_cores.len())
            .map(|i| self.inner.app_cores.core_ref(i).busy_cycles())
            .collect()
    }

    /// Downcasts the application.
    ///
    /// # Panics
    ///
    /// Panics if the app is not a `T`.
    pub fn app_as<T: 'static>(&self) -> &T {
        let Some(app) = self.app.as_ref() else {
            panic!("app_as: no application attached");
        };
        let Some(app) = app.as_any().downcast_ref::<T>() else {
            panic!("app_as: application is not a {}", std::any::type_name::<T>());
        };
        app
    }

    /// Downcasts the application if it is a `T`.
    pub fn try_app<T: 'static>(&self) -> Option<&T> {
        self.app
            .as_ref()
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Mutable downcast of the application.
    ///
    /// # Panics
    ///
    /// Panics if the app is not a `T`.
    pub fn app_as_mut<T: 'static>(&mut self) -> &mut T {
        let Some(app) = self.app.as_mut() else {
            panic!("app_as_mut: no application attached");
        };
        let Some(app) = app.as_any_mut().downcast_mut::<T>() else {
            panic!(
                "app_as_mut: application is not a {}",
                std::any::type_name::<T>()
            );
        };
        app
    }

    // ------------------------------------------------------------------
    // Fast-path execution.

    fn fp_core_for(inner: &Inner, fid: u32) -> usize {
        let Some(flow) = inner.fp.flows.get(fid) else {
            return 0;
        };
        // Hash exactly as the NIC would hash the *incoming* direction of
        // this flow, so RX and TX of a connection share a core.
        let k = flow.conn.key;
        let h = hash_tuple(k.remote_ip, k.local_ip, k.remote_port, k.local_port);
        inner.nic.rss().queue_for_hash(h)
    }

    /// Runs fast-path work on core `core_idx` arriving at `t`; flushes
    /// staged effects at the completion time.
    fn run_fp(
        &mut self,
        core_idx: usize,
        t: SimTime,
        ctx: &mut Ctx<'_, NetMsg>,
        extra_cycles: u64,
        f: impl FnOnce(&mut FastPath, SimTime, &mut CycleAccount) -> u64,
    ) -> (SimTime, SimTime) {
        let inner = &mut self.inner;
        let core_idx = core_idx.min(inner.active_fp.saturating_sub(1));
        #[cfg(feature = "profile")]
        inner.prof_arm("fp", core_idx as u32);
        let mut t_eff = t;
        let mut wake_extra = 0;
        {
            let core = inner.fp_cores.core(core_idx);
            // Blocked-core wake (§3.4): no packets for `block_after`.
            if core.is_idle(t) && t.saturating_sub(core.last_work_end()) > inner.cfg.block_after {
                t_eff = t + FP_WAKE_LATENCY;
                wake_extra = inner.cfg.costs.wake_cycles;
                inner.reg.inc(inner.c_fp_wakes);
                let per_core = inner
                    .reg
                    .counter("host.fp_wakes", Scope::Core(core_idx as u32));
                inner.reg.inc(per_core);
            }
        }
        let start = t_eff.max(inner.fp_cores.core_ref(core_idx).busy_until());
        let mut cycles = f(&mut inner.fp, start, &mut inner.acct);
        #[cfg(any(test, debug_assertions, feature = "audit"))]
        crate::audit::check_fastpath(&inner.fp, start);
        cycles += extra_cycles + wake_extra;
        if wake_extra > 0 {
            inner.acct.charge(Module::Other, wake_extra, wake_extra / 2);
        }
        // Host-level costs bypass the fast path's charge funnel; stage
        // them under their own frames so the core-run drain below
        // attributes them instead of leaving an anonymous residual.
        #[cfg(feature = "profile")]
        {
            if extra_cycles > 0 {
                let _g = tas_telemetry::profile::guard("cache_stall");
                tas_telemetry::profile::charge(extra_cycles);
            }
            if wake_extra > 0 {
                let _g = tas_telemetry::profile::guard("wake");
                tas_telemetry::profile::charge(wake_extra);
            }
        }
        let (_, end) = inner.fp_cores.core(core_idx).run(t_eff, cycles);
        self.flush_fp(end, start.saturating_sub(t), ctx);
        (start, end)
    }

    /// Per-packet stall cycles from the flow-state cache model.
    fn cache_stall(inner: &Inner) -> u64 {
        let flows = inner.fp.flows.len() as u64;
        if flows == 0 {
            return 0;
        }
        let per_core = flows / inner.active_fp.max(1) as u64;
        let model = tas_cpusim::CacheModel::new(
            inner.cfg.cache_per_core,
            inner.cfg.cache_lines_per_req,
            inner.cfg.cache_miss_penalty,
        );
        // Footprint per flow = the lines the fast path touches (default 2
        // lines = the 102-byte state rounded up; ablations inflate it).
        model.stall_cycles(64 * inner.cfg.cache_lines_per_req, per_core) as u64
    }

    /// Drains staged fast-path effects at completion time `end`. `wait` is
    /// how long the triggering work queued for its core (span profiling
    /// attributes it to the fp_tx hop); pass zero for untimed flushes.
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    fn flush_fp(&mut self, end: SimTime, wait: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let mut packets =
            take_recycled(&mut self.inner.fp.out.packets, &mut self.inner.scratch.fp_packets);
        let mut notices =
            take_recycled(&mut self.inner.fp.out.notices, &mut self.inner.scratch.fp_notices);
        let mut exceptions = take_recycled(
            &mut self.inner.fp.out.exceptions,
            &mut self.inner.scratch.fp_exceptions,
        );
        let mut tx_timers = take_recycled(
            &mut self.inner.fp.out.tx_timers,
            &mut self.inner.scratch.fp_tx_timers,
        );
        for pkt in packets.drain(..) {
            #[cfg(feature = "trace")]
            {
                tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                    t: end,
                    site: "fp",
                    ev: tas_telemetry::TraceEvent::SegTx {
                        seg: Box::new(pkt.clone()),
                    },
                });
                if !pkt.payload.is_empty() {
                    trace_stage(
                        "fp",
                        end,
                        tas_telemetry::Stage::FpTx,
                        pkt.flow_key().reversed(),
                        pkt.tcp.seq,
                        pkt.payload.len() as u32,
                        wait,
                    );
                }
            }
            self.inner.nic.tx(end, pkt, ctx);
        }
        for (fid, at) in tx_timers.drain(..) {
            let id = ctx.timer_at(at.max(end), timers::FP_TX, fid as u64);
            self.inner.fp_tx_timers.insert(fid, id);
        }
        for (context, notice) in notices.drain(..) {
            self.deliver_notice(end, context, notice, ctx);
        }
        for seg in exceptions.drain(..) {
            self.defer_sp(end, SpWork::Exception(seg), ctx);
        }
        self.inner.scratch.fp_packets = packets;
        self.inner.scratch.fp_notices = notices;
        self.inner.scratch.fp_exceptions = exceptions;
        self.inner.scratch.fp_tx_timers = tx_timers;
    }

    /// Queues app-event delivery at `t` (deferred so interim work on the
    /// target core is served in time order).
    fn defer_app(&mut self, t: SimTime, context: u16, ev: AppEvent, ctx: &mut Ctx<'_, NetMsg>) {
        let context = (context as usize % self.inner.app_q.len().max(1)) as u16;
        self.inner.app_q[context as usize].push_back(ev);
        ctx.timer_at(t, timers::APP_RUN, context as u64);
    }

    fn defer_sp(&mut self, t: SimTime, work: SpWork, ctx: &mut Ctx<'_, NetMsg>) {
        self.inner.sp_q.push_back(work);
        ctx.timer_at(t, timers::SP_RUN, 0);
    }

    // ------------------------------------------------------------------
    // Slow-path execution.

    fn run_sp_exception(&mut self, t: SimTime, seg: Segment, ctx: &mut Ctx<'_, NetMsg>) {
        // Pre-create a socket for a potential incoming connection.
        let is_syn =
            seg.tcp.flags.contains(TcpFlags::SYN) && !seg.tcp.flags.contains(TcpFlags::ACK);
        let (fresh_opaque, accept_ctx) = if is_syn {
            let ctx_id = self.inner.next_context % self.inner.cfg.app_cores.max(1) as u16;
            self.inner.next_context = self.inner.next_context.wrapping_add(1);
            let sock = self.alloc_sock(ctx_id);
            (sock as u64, ctx_id)
        } else {
            (0, 0)
        };
        let iss = ctx.rng().next_u32();
        let start = t.max(self.inner.sp_core.busy_until());
        #[cfg(feature = "trace")]
        let stamp = (seg.flow_key().reversed(), seg.tcp.seq, seg.payload.len() as u32);
        let inner = &mut self.inner;
        #[cfg(feature = "profile")]
        inner.prof_arm("sp", 0);
        let cycles = inner.sp.on_exception(
            start,
            seg,
            &mut inner.fp,
            iss,
            fresh_opaque,
            accept_ctx,
            &mut inner.acct,
        );
        #[cfg(any(test, debug_assertions, feature = "audit"))]
        crate::audit::check_fastpath(&inner.fp, start);
        let (_, end) = inner.sp_core.run(t, cycles);
        #[cfg(feature = "trace")]
        {
            let (flow, seq, len) = stamp;
            trace_stage(
                "sp",
                end,
                tas_telemetry::Stage::SpRx,
                flow,
                seq,
                len,
                start.saturating_sub(t),
            );
        }
        // Pending incoming connections: the application's accept path runs
        // on its app core, then the slow path answers with SYN-ACK.
        if inner.sp.has_pending_accepts() {
            let app_cost = inner.cfg.costs.so_conn_op + inner.cfg.costs.so_poll;
            // Re-arming onto the app core also discards the charges the
            // handshake-ACK's discarded fast-path estimate staged above.
            #[cfg(feature = "profile")]
            {
                inner.prof_arm("app", accept_ctx as u32);
                let _g = tas_telemetry::profile::guard("accept");
                tas_telemetry::profile::charge(app_cost);
            }
            let (_, app_end) = inner.app_cores.core(accept_ctx as usize).run(end, app_cost);
            inner.acct.charge(Module::Api, app_cost, app_cost);
            let start2 = app_end.max(inner.sp_core.busy_until());
            #[cfg(feature = "profile")]
            inner.prof_arm("sp", 0);
            inner.sp.accept_pending(start2, &mut inner.acct);
            let cost2 = inner.cfg.costs.sp_conn_op;
            inner.sp_core.run(app_end, cost2);
        }
        self.flush_sp(end, ctx);
    }

    fn run_sp<T>(
        &mut self,
        t: SimTime,
        ctx: &mut Ctx<'_, NetMsg>,
        f: impl FnOnce(&mut SlowPath, &mut FastPath, SimTime, &mut CycleAccount) -> (u64, T),
    ) -> T {
        let start = t.max(self.inner.sp_core.busy_until());
        let inner = &mut self.inner;
        #[cfg(feature = "profile")]
        inner.prof_arm("sp", 0);
        let (cycles, ret) = f(&mut inner.sp, &mut inner.fp, start, &mut inner.acct);
        #[cfg(any(test, debug_assertions, feature = "audit"))]
        crate::audit::check_fastpath(&inner.fp, start);
        let (_, end) = inner.sp_core.run(t, cycles);
        self.flush_sp(end, ctx);
        ret
    }

    fn flush_sp(&mut self, end: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let mut packets =
            take_recycled(&mut self.inner.sp.out.packets, &mut self.inner.scratch.sp_packets);
        let mut events =
            take_recycled(&mut self.inner.sp.out.events, &mut self.inner.scratch.sp_events);
        for pkt in packets.drain(..) {
            #[cfg(feature = "trace")]
            {
                tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                    t: end,
                    site: "sp",
                    ev: tas_telemetry::TraceEvent::SegTx {
                        seg: Box::new(pkt.clone()),
                    },
                });
                trace_stage(
                    "sp",
                    end,
                    tas_telemetry::Stage::SpTx,
                    pkt.flow_key().reversed(),
                    pkt.tcp.seq,
                    pkt.payload.len() as u32,
                    SimTime::ZERO,
                );
            }
            self.inner.nic.tx(end, pkt, ctx);
        }
        for ev in events.drain(..) {
            match ev {
                SpAppEvent::ConnectDone { opaque, fid } => {
                    let sock = opaque as SockId;
                    self.inner.socks[sock as usize].fid = Some(fid);
                    self.inner.fid_to_sock.insert(fid, sock);
                    let c = self.inner.socks[sock as usize].context;
                    self.defer_app(end, c, AppEvent::Connected { sock }, ctx);
                }
                SpAppEvent::ConnectFailed { opaque } => {
                    let sock = opaque as SockId;
                    let c = self.inner.socks[sock as usize].context;
                    self.mark_closed(sock);
                    self.defer_app(end, c, AppEvent::Closed { sock }, ctx);
                }
                SpAppEvent::AcceptDone {
                    opaque, fid, port, ..
                } => {
                    let sock = opaque as SockId;
                    self.inner.socks[sock as usize].fid = Some(fid);
                    self.inner.fid_to_sock.insert(fid, sock);
                    let c = self.inner.socks[sock as usize].context;
                    self.defer_app(end, c, AppEvent::Accepted { sock, port }, ctx);
                }
                SpAppEvent::PeerClosed { fid } => {
                    if let Some(&sock) = self.inner.fid_to_sock.get(&fid) {
                        self.inner.socks[sock as usize].peer_closed = true;
                        let c = self.inner.socks[sock as usize].context;
                        self.mark_closed(sock);
                        self.defer_app(end, c, AppEvent::Closed { sock }, ctx);
                    }
                }
                SpAppEvent::CloseDone { opaque } => {
                    let sock = opaque as SockId;
                    if (sock as usize) < self.inner.socks.len() {
                        let c = self.inner.socks[sock as usize].context;
                        if !self.inner.socks[sock as usize].closed_evt_sent {
                            self.mark_closed(sock);
                            self.defer_app(end, c, AppEvent::Closed { sock }, ctx);
                        }
                    }
                }
                SpAppEvent::Detached { opaque, fid } => {
                    self.inner.fid_to_sock.remove(&fid);
                    // Reclaim any armed pacing timer: the fid may be
                    // recycled for a new flow before the timer would fire.
                    if let Some(id) = self.inner.fp_tx_timers.remove(&fid) {
                        ctx.cancel_timer(id);
                    }
                    let sock = opaque as SockId;
                    if (sock as usize) < self.inner.socks.len() {
                        self.inner.socks[sock as usize].fid = None;
                    }
                }
            }
        }
        self.inner.scratch.sp_packets = packets;
        self.inner.scratch.sp_events = events;
        // Slow-path work may have staged fast-path output (rate updates
        // triggering transmissions).
        if !self.inner.fp.out.packets.is_empty()
            || !self.inner.fp.out.notices.is_empty()
            || !self.inner.fp.out.tx_timers.is_empty()
            || !self.inner.fp.out.exceptions.is_empty()
        {
            self.flush_fp(end, SimTime::ZERO, ctx);
        }
    }

    fn mark_closed(&mut self, sock: SockId) {
        let s = &mut self.inner.socks[sock as usize];
        s.closed_evt_sent = true;
    }

    fn alloc_sock(&mut self, context: u16) -> SockId {
        let id = self.inner.socks.len() as SockId;
        self.inner.socks.push(SockState {
            context,
            ..SockState::default()
        });
        id
    }

    // ------------------------------------------------------------------
    // Application delivery.

    fn deliver_notice(
        &mut self,
        t: SimTime,
        context: u16,
        notice: RxNotice,
        ctx: &mut Ctx<'_, NetMsg>,
    ) {
        let sock = notice.opaque as SockId;
        if (sock as usize) >= self.inner.socks.len() {
            return;
        }
        if notice.rx_bytes > 0 {
            #[cfg(feature = "trace")]
            if let Some(flow) = self.inner.socks[sock as usize]
                .fid
                .and_then(|fid| self.inner.fp.flows.get(fid))
            {
                // First newly readable byte: the RX ring already holds the
                // payload this notice announces.
                let off0 = flow.rcv.rx.end_offset().saturating_sub(notice.rx_bytes as u64);
                trace_stage(
                    "host",
                    t,
                    tas_telemetry::Stage::ShmDoorbell,
                    flow.conn.key.reversed(),
                    flow.rcv_seq_of(off0),
                    notice.rx_bytes,
                    SimTime::ZERO,
                );
            }
            self.defer_app(t, context, AppEvent::Readable { sock }, ctx);
        }
        if notice.tx_acked > 0 && self.inner.socks[sock as usize].want_write {
            // Wake the writer once useful buffer space exists (libTAS's
            // epoll emulation coalesces exactly like kernel EPOLLOUT).
            let space = self.inner.socks[sock as usize]
                .fid
                .and_then(|fid| self.inner.fp.flows.get(fid))
                .map(|f| (f.snd.tx.free(), f.snd.tx.capacity()))
                .unwrap_or((usize::MAX, 0));
            if space.0 >= (space.1 / 4).max(8 * 1024).min(space.1) {
                self.inner.socks[sock as usize].want_write = false;
                self.defer_app(t, context, AppEvent::Writable { sock }, ctx);
            }
        }
    }

    /// Invokes the app handler on its context's core at `t`, charging the
    /// API poll cost, the API call costs it makes, and its own cycles.
    fn deliver_app(&mut self, t: SimTime, context: u16, ev: AppEvent, ctx: &mut Ctx<'_, NetMsg>) {
        let context = (context as usize % self.inner.app_cores.len().max(1)) as u16;
        let mut t_eff = t;
        {
            let core = self.inner.app_cores.core(context as usize);
            if core.is_idle(t) && t.saturating_sub(core.last_work_end()) > APP_IDLE_SLEEP {
                t_eff = t + APP_WAKE_LATENCY;
            }
        }
        let poll_cost = match self.inner.cfg.api {
            ApiKind::Sockets => self.inner.cfg.costs.so_poll,
            ApiKind::LowLevel => self.inner.cfg.costs.ll_op,
        };
        // Prepare the frame, run the handler.
        self.inner.frame = Frame {
            context,
            now: t_eff,
            api_cycles: poll_cost,
            app_cycles: 0,
            fp_cmds: Vec::new(),
            sp_cmds: Vec::new(),
            timers: Vec::new(),
            posts: Vec::new(),
        };
        let Some(mut app) = self.app.take() else {
            debug_assert!(false, "nested app delivery");
            return;
        };
        {
            let mut api = Api {
                inner: &mut self.inner,
            };
            app.on_event(ev, &mut api);
        }
        self.app = Some(app);
        self.finish_frame(t_eff, ctx);
    }

    fn finish_frame(&mut self, t_eff: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let frame = std::mem::take(&mut self.inner.frame);
        let total = frame.api_cycles + frame.app_cycles;
        let ipc = self.inner.cfg.costs.ipc_times_100;
        self.inner
            .acct
            .charge(Module::Api, frame.api_cycles, frame.api_cycles * ipc / 100);
        self.inner
            .acct
            .charge(Module::App, frame.app_cycles, frame.app_cycles * 120 / 100);
        // Application frames charge through the account, not a profiled
        // funnel; stage the API/handler split explicitly so the app-core
        // drain attributes it.
        #[cfg(feature = "profile")]
        {
            self.inner.prof_arm("app", frame.context as u32);
            let _g = tas_telemetry::profile::guard("app");
            if frame.api_cycles > 0 {
                let _g2 = tas_telemetry::profile::guard("api");
                tas_telemetry::profile::charge(frame.api_cycles);
            }
            if frame.app_cycles > 0 {
                let _g2 = tas_telemetry::profile::guard("work");
                tas_telemetry::profile::charge(frame.app_cycles);
            }
        }
        let (_, end) = self
            .inner
            .app_cores
            .core(frame.context as usize)
            .run(t_eff, total);
        // App timers.
        for (delay, token) in frame.timers {
            let data = ((frame.context as u64) << 48) | (token & 0xFFFF_FFFF_FFFF);
            ctx.timer_at(end + delay, timers::APP, data);
        }
        // Cross-thread posts: delivered on the target context at `end`.
        for (context, token) in frame.posts {
            let data = ((context as u64) << 48) | (token & 0xFFFF_FFFF_FFFF);
            ctx.timer_at(end, timers::APP, data);
        }
        // Fast-path and slow-path commands issued by the handler become
        // events at `end` (the cores must serve interim work first).
        for cmd in frame.fp_cmds {
            self.inner.fp_q.push_back(cmd);
            ctx.timer_at(end, timers::FP_CMD, 0);
        }
        for cmd in frame.sp_cmds {
            let work = match cmd {
                SpCmd::Connect { sock, ip, port } => SpWork::Connect { sock, ip, port },
                SpCmd::Close { sock } => SpWork::Close { sock },
            };
            self.defer_sp(end, work, ctx);
        }
    }

    fn run_sp_work(&mut self, work: SpWork, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        match work {
            SpWork::Exception(seg) => self.run_sp_exception(now, seg, ctx),
            SpWork::Connect { sock, ip, port } => {
                let iss = ctx.rng().next_u32();
                let context = self.inner.socks[sock as usize].context;
                let peer_mac = mac_for_ip(ip);
                self.run_sp(now, ctx, |sp, _fp, t, acct| {
                    (
                        sp.connect(t, ip, port, peer_mac, sock as u64, context, iss, acct),
                        (),
                    )
                });
            }
            SpWork::Close { sock } => {
                if let Some(fid) = self.inner.socks[sock as usize].fid {
                    self.run_sp(now, ctx, |sp, fp, t, acct| (sp.close(t, fid, fp, acct), ()));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Proportionality controller (§3.4).

    fn prop_tick(&mut self, now: SimTime) {
        let inner = &mut self.inner;
        let utils = inner.fp_cores.sample_utilization(now);
        let active = inner.active_fp;
        let mean_util =
            utils.iter().take(active).sum::<f64>() / active.max(1) as f64;
        inner.util_series.push(now, mean_util);
        let idle: f64 = utils.iter().take(active).map(|u| (1.0 - u).max(0.0)).sum();
        let mut changed = false;
        if idle < inner.cfg.idle_add_threshold && active < inner.cfg.max_fp_cores {
            inner.active_fp = active + 1;
            changed = true;
        } else if idle > inner.cfg.idle_remove_threshold && active > 1 {
            inner.active_fp = active - 1;
            changed = true;
        }
        if changed {
            inner.reg.inc(inner.c_scale_events);
            #[cfg(feature = "trace")]
            trace_host(
                "host",
                now,
                tas_telemetry::TraceEvent::CoreScale {
                    active: inner.active_fp as u32,
                    delta: inner.active_fp as i32 - active as i32,
                },
            );
            // Eager RSS redirection-table rewrite.
            inner.nic.rss_mut().rebalance(inner.active_fp);
        }
        inner.core_series.push(now, inner.active_fp as f64);
    }

    /// Samples the queue-depth gauges. Called from packet arrival and the
    /// periodic timers; [`SeriesRecorder::begin`] floors each sample onto
    /// the fixed grid and drops re-entries within one interval, so the
    /// output is a deterministic fixed-cadence series regardless of which
    /// event happened to drive it.
    fn sample_series(&mut self, now: SimTime) {
        let inner = &mut self.inner;
        if !inner.series.begin(now) {
            return;
        }
        inner
            .series
            .record("cores.active_fp", inner.active_fp as f64);
        inner
            .series
            .record("nic.rx_pending", inner.nic.rx_pending() as f64);
        let (mut tx_bytes, mut rx_bytes) = (0u64, 0u64);
        for (_, f) in inner.fp.flows.iter() {
            tx_bytes += f.snd.tx.len() as u64;
            rx_bytes += f.rcv.rx.len() as u64;
        }
        inner.series.record("shm.tx_bytes", tx_bytes as f64);
        inner.series.record("shm.rx_bytes", rx_bytes as f64);
        inner
            .series
            .record("sp.queue_depth", inner.sp_q.len() as f64);
        let tick = inner.series.current_tick();
        let busy: Vec<SimTime> = (0..inner.fp_cores.len())
            .map(|i| inner.fp_cores.core_ref(i).busy_total())
            .collect();
        inner.fp_util.sample(tick, busy);
    }

    fn ensure_started(&mut self, ctx: &mut Ctx<'_, NetMsg>) {
        if self.inner.started {
            return;
        }
        self.inner.started = true;
        self.inner.nic.rss_mut().rebalance(self.inner.active_fp);
        let interval = self.inner.cfg.control_interval;
        ctx.timer(interval, timers::SP_CTRL, 0);
        if self.inner.cfg.proportional {
            ctx.timer(SimTime::from_ms(1), timers::PROP, 0);
        }
        // Run the app's on_start through the same frame machinery.
        let t = ctx.now();
        self.inner.frame = Frame {
            context: 0,
            now: t,
            api_cycles: 0,
            app_cycles: 0,
            fp_cmds: Vec::new(),
            sp_cmds: Vec::new(),
            timers: Vec::new(),
            posts: Vec::new(),
        };
        let Some(mut app) = self.app.take() else {
            debug_assert!(false, "app missing at start");
            return;
        };
        {
            let mut api = Api {
                inner: &mut self.inner,
            };
            app.on_start(&mut api);
        }
        self.app = Some(app);
        self.finish_frame(t, ctx);
    }
}

/// Resolves the deterministic MAC for a simulated host IP (the slow
/// path's "ARP table": addressing in the simulator is 1:1).
pub fn mac_for_ip(ip: Ipv4Addr) -> MacAddr {
    let o = ip.octets();
    let n = u32::from_be_bytes([0, o[1], o[2], o[3]]);
    MacAddr::for_host(n)
}

// ----------------------------------------------------------------------
// The libTAS application API.

struct Api<'a> {
    inner: &'a mut Inner,
}

impl Api<'_> {
    fn call_cost(&mut self, sockets_cost: u64) {
        let c = match self.inner.cfg.api {
            ApiKind::Sockets => sockets_cost,
            ApiKind::LowLevel => self.inner.cfg.costs.ll_op,
        };
        self.inner.frame.api_cycles += c;
    }
}

impl StackApi for Api<'_> {
    fn now(&self) -> SimTime {
        self.inner.frame.now
    }

    fn listen(&mut self, port: u16) {
        self.call_cost(self.inner.cfg.costs.so_conn_op);
        self.inner.sp.listen(port);
    }

    fn connect(&mut self, ip: Ipv4Addr, port: u16) -> SockId {
        self.call_cost(self.inner.cfg.costs.so_conn_op);
        let context = self.inner.next_context % self.inner.cfg.app_cores.max(1) as u16;
        self.inner.next_context = self.inner.next_context.wrapping_add(1);
        let id = self.inner.socks.len() as SockId;
        self.inner.socks.push(SockState {
            context,
            ..SockState::default()
        });
        self.inner
            .frame
            .sp_cmds
            .push(SpCmd::Connect { sock: id, ip, port });
        id
    }

    fn send(&mut self, sock: SockId, data: &[u8]) -> usize {
        self.call_cost(self.inner.cfg.costs.so_send);
        let s = &mut self.inner.socks[sock as usize];
        let Some(fid) = s.fid else {
            return 0;
        };
        let Some(flow) = self.inner.fp.flows.get_mut(fid) else {
            return 0;
        };
        // libTAS writes payload directly into the user-space TX ring.
        #[cfg(feature = "trace")]
        let off0 = flow.snd.tx.end_offset();
        let n = flow.snd.tx.append_partial(data);
        if n < data.len() {
            s.want_write = true;
        }
        if n > 0 {
            #[cfg(feature = "trace")]
            trace_stage(
                "app",
                self.inner.frame.now,
                tas_telemetry::Stage::AppSend,
                flow.conn.key,
                flow.seq_of(off0),
                n as u32,
                SimTime::ZERO,
            );
            self.inner.frame.fp_cmds.push(FpCmd::Tx(fid));
        }
        n
    }

    fn recv(&mut self, sock: SockId, max: usize) -> Vec<u8> {
        self.call_cost(self.inner.cfg.costs.so_recv);
        let s = &mut self.inner.socks[sock as usize];
        if let Some(spill) = &mut s.spill {
            let out = spill.pop(max);
            if !out.is_empty() {
                self.inner.reg.add(self.inner.c_app_bytes, out.len() as u64);
                return out;
            }
        }
        let Some(fid) = s.fid else {
            return Vec::new();
        };
        let Some(flow) = self.inner.fp.flows.get_mut(fid) else {
            return Vec::new();
        };
        #[cfg(feature = "trace")]
        let off0 = flow.rcv.rx.start_offset();
        let out = flow.rcv.rx.pop(max);
        if !out.is_empty() {
            #[cfg(feature = "trace")]
            trace_stage(
                "app",
                self.inner.frame.now,
                tas_telemetry::Stage::AppDeliver,
                flow.conn.key.reversed(),
                flow.rcv_seq_of(off0),
                out.len() as u32,
                SimTime::ZERO,
            );
            self.inner.reg.add(self.inner.c_app_bytes, out.len() as u64);
            self.inner.frame.fp_cmds.push(FpCmd::RxBump(fid));
        }
        out
    }

    fn readable(&self, sock: SockId) -> usize {
        let s = &self.inner.socks[sock as usize];
        let mut n = s.spill.as_ref().map(|r| r.len()).unwrap_or(0);
        if let Some(fid) = s.fid {
            if let Some(flow) = self.inner.fp.flows.get(fid) {
                n += flow.rcv.rx.len();
            }
        }
        n
    }

    fn close(&mut self, sock: SockId) {
        self.call_cost(self.inner.cfg.costs.so_conn_op);
        self.inner.frame.sp_cmds.push(SpCmd::Close { sock });
    }

    fn charge_app_cycles(&mut self, cycles: u64) {
        self.inner.frame.app_cycles += cycles;
    }

    fn set_app_timer(&mut self, delay: SimTime, token: u64) {
        self.inner.frame.timers.push((delay, token));
    }

    fn post(&mut self, context: u16, token: u64) {
        // A context-queue hop costs roughly one low-level queue operation.
        self.inner.frame.api_cycles += self.inner.cfg.costs.ll_op;
        self.inner.frame.posts.push((context, token));
    }
}

// ----------------------------------------------------------------------
// Agent implementation.

impl Agent<NetMsg> for TasHost {
    fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        self.ensure_started(ctx);
        match ev {
            Event::Msg {
                msg: NetMsg::Packet(seg),
                ..
            } => {
                let now = ctx.now();
                self.sample_series(now);
                let q = self.inner.nic.rx_enqueue(seg);
                let Some(seg) = self.inner.nic.rx_dequeue(q) else {
                    debug_assert!(false, "rx_dequeue empty immediately after rx_enqueue");
                    return;
                };
                #[cfg(feature = "trace")]
                tas_telemetry::emit(|| tas_telemetry::TraceRecord {
                    t: now,
                    site: "host",
                    ev: tas_telemetry::TraceEvent::SegRx {
                        seg: Box::new(seg.clone()),
                    },
                });
                #[cfg(feature = "trace")]
                let stamp = if seg.payload.is_empty() {
                    None
                } else {
                    Some((
                        seg.flow_key().reversed(),
                        seg.tcp.seq,
                        seg.payload.len() as u32,
                    ))
                };
                #[cfg(feature = "trace")]
                if let Some((flow, seq, len)) = stamp {
                    trace_stage(
                        "nic",
                        now,
                        tas_telemetry::Stage::NicRx,
                        flow,
                        seq,
                        len,
                        SimTime::ZERO,
                    );
                }
                let core_idx = q.min(self.inner.active_fp - 1);
                // Finite RX ring: drop when the core is too far behind.
                let backlog = self
                    .inner
                    .fp_cores
                    .core_ref(core_idx)
                    .busy_until()
                    .saturating_sub(now);
                if backlog > self.inner.cfg.max_core_backlog {
                    let id = self.inner.c_drop_backlog;
                    self.inner.reg.inc(id);
                    let per_core = self
                        .inner
                        .reg
                        .counter("host.drop_backlog", Scope::Core(core_idx as u32));
                    self.inner.reg.inc(per_core);
                    return;
                }
                let stall = Self::cache_stall(&self.inner);
                let (start, end) = self.run_fp(core_idx, now, ctx, stall, |fp, t, acct| {
                    let c = fp.rx_segment(t, seg, acct);
                    if stall > 0 {
                        acct.charge(Module::Tcp, stall, 0);
                    }
                    c
                });
                #[cfg(feature = "trace")]
                if let Some((flow, seq, len)) = stamp {
                    trace_stage(
                        "fp",
                        end,
                        tas_telemetry::Stage::FpRx,
                        flow,
                        seq,
                        len,
                        start.saturating_sub(now),
                    );
                }
                #[cfg(not(feature = "trace"))]
                let _ = (start, end);
            }
            Event::Msg {
                msg: NetMsg::Ctl { kind, a, b },
                ..
            } => {
                let now = ctx.now();
                self.deliver_app(now, 0, AppEvent::Ctl { kind, a, b }, ctx);
            }
            Event::Timer { kind, data } => {
                let now = ctx.now();
                match kind {
                    timers::INIT => {}
                    timers::FP_TX => {
                        let fid = data as u32;
                        self.inner.fp_tx_timers.remove(&fid);
                        let core = Self::fp_core_for(&self.inner, fid);
                        self.run_fp(core, now, ctx, 0, |fp, t, acct| fp.tx_poll(t, fid, acct));
                    }
                    timers::SP_CTRL => {
                        self.sample_series(now);
                        self.run_sp(now, ctx, |sp, fp, t, acct| {
                            (sp.control_loop(t, fp, acct), ())
                        });
                        // Self-pacing: the next iteration starts when this
                        // one finishes or after the nominal interval,
                        // whichever is later.
                        let next = (now + self.inner.cfg.control_interval)
                            .max(self.inner.sp_core.busy_until());
                        ctx.timer_at(next, timers::SP_CTRL, 0);
                    }
                    timers::PROP => {
                        self.sample_series(now);
                        self.prop_tick(now);
                        ctx.timer(SimTime::from_ms(1), timers::PROP, 0);
                    }
                    timers::APP => {
                        let context = (data >> 48) as u16;
                        let token = data & 0xFFFF_FFFF_FFFF;
                        self.deliver_app(now, context, AppEvent::Timer { token }, ctx);
                    }
                    timers::APP_RUN => {
                        let context = data as u16;
                        if let Some(ev) = self.inner.app_q[context as usize].pop_front() {
                            self.deliver_app(now, context, ev, ctx);
                        }
                    }
                    timers::FP_CMD => {
                        if let Some(cmd) = self.inner.fp_q.pop_front() {
                            match cmd {
                                FpCmd::Tx(fid) => {
                                    let core = Self::fp_core_for(&self.inner, fid);
                                    self.run_fp(core, now, ctx, 0, |fp, t, acct| {
                                        fp.tx_command(t, fid, acct)
                                    });
                                }
                                FpCmd::RxBump(fid) => {
                                    let core = Self::fp_core_for(&self.inner, fid);
                                    self.run_fp(core, now, ctx, 0, |fp, t, acct| {
                                        fp.rx_bump(t, fid, acct)
                                    });
                                }
                            }
                        }
                    }
                    timers::SP_RUN => {
                        if let Some(work) = self.inner.sp_q.pop_front() {
                            self.run_sp_work(work, now, ctx);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    impl_as_any!();
}
