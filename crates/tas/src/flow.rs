//! Per-flow fast-path state (paper Table 3) and the flow table.
//!
//! The state is decomposed into the same five components as the
//! reference TCP engine (DESIGN.md §16): [`FpConnMgmt`] (`conn`),
//! [`FpSendRel`] (`snd`), [`FpRecvRel`] (`rcv`), [`FpFlowCtrl`] (`fc`)
//! and [`FpCongCtrl`] (`cc`). Fields stay `pub` — the fast path is a
//! flat, cache-line-counted struct and external harnesses construct it
//! literally — but every *mutation* inside the `tas` crate goes through
//! the owning component's `&mut self` methods, enforced by tas-lint
//! rule R8's `[components]` ownership map.

use crate::slab::{FlowIndex, Slab};
use tas_cc::{CcState, CongCtrl, RateFeedback};
use tas_proto::FlowKey;
use tas_shm::ByteRing;
use tas_sim::SimTime;

/// The architectural per-flow fast-path state, mirroring the paper's
/// Table 3 field-for-field. The paper counts 102 bytes; this constant is
/// computed from the same field widths and asserted in tests — it is what
/// the cache model multiplies by the connection count.
pub const FLOW_STATE_BYTES: u64 = {
    // Field widths in bits, straight from Table 3.
    let bits = 64   // opaque
        + 16        // context
        + 24        // bucket
        + 128       // rx|tx_start
        + 64        // rx|tx_size
        + 128       // rx|tx_head|tail
        + 32        // tx_sent
        + 32        // seq
        + 32        // ack
        + 16        // window
        + 4         // dupack_cnt
        + 16        // local_port
        + 96        // peer_ip|port|mac
        + 64        // ooo_start|len
        + 64        // cnt_ackb|ecnb
        + 8         // cnt_frexmits
        + 32; // rtt_est
              // 820 bits = 102.5 bytes; the paper reports 102 (the 4-bit dupack
              // counter packs into the window word's slack).
    bits / 8
};

/// Connection-management component: identity, timestamps, RTT tracking,
/// and lifecycle (slow-path teardown coordination).
#[derive(Debug)]
pub struct FpConnMgmt {
    /// Application-defined flow identifier, relayed in notifications.
    pub opaque: u64,
    /// RX/TX context queue number.
    pub context: u16,
    /// The flow's 4-tuple (local_port + peer ip|port; peer MAC is carried
    /// in `peer_mac` for segmentation).
    pub key: FlowKey,
    /// Peer MAC for header construction.
    pub peer_mac: tas_proto::MacAddr,
    /// Most recent peer timestamp value, echoed in TSecr.
    pub ts_recent: u32,
    /// RTT estimate in microseconds (rtt_est), EWMA from timestamps.
    pub rtt_est_us: u32,
    /// The application closed this flow; the slow path is draining it.
    pub closing: bool,
}

impl FpConnMgmt {
    /// Component state at flow installation.
    pub fn new(
        opaque: u64,
        context: u16,
        key: FlowKey,
        peer_mac: tas_proto::MacAddr,
        ts_recent: u32,
    ) -> FpConnMgmt {
        FpConnMgmt {
            opaque,
            context,
            key,
            peer_mac,
            ts_recent,
            rtt_est_us: 0,
            closing: false,
        }
    }

    /// Records the peer's latest timestamp value for echo.
    pub fn note_ts(&mut self, tsval: u32) {
        self.ts_recent = tsval;
    }

    /// Folds one RTT sample (µs) into the estimate (EWMA 7/8, like the
    /// kernel's SRTT).
    pub fn rtt_sample(&mut self, sample_us: u32) {
        self.rtt_est_us = if self.rtt_est_us == 0 {
            sample_us
        } else {
            (self.rtt_est_us * 7 + sample_us) / 8
        };
    }

    /// The application closed the flow; teardown is deferred until the
    /// transmit buffer drains.
    pub fn mark_closing(&mut self) {
        self.closing = true;
    }
}

/// Send-reliability component: the transmit ring, in-flight accounting,
/// duplicate-ACK recovery, pacing-timer arming, and stall detection.
#[derive(Debug)]
pub struct FpSendRel {
    /// Per-flow transmit payload buffer (tx_start|size|head|tail).
    /// `start_offset` is the unacknowledged base; the application appends
    /// at `end_offset`.
    pub tx: ByteRing,
    /// Sent-but-unacknowledged bytes from the TX base (tx_sent).
    pub tx_sent: u64,
    /// Highest TX stream offset ever transmitted (recovery resets
    /// `tx_sent` "as if those segments had not been sent", but cumulative
    /// ACKs for them must still be accepted).
    pub max_sent_off: u64,
    /// Local initial sequence number; local seq = iss + 1 + tx offset.
    pub iss: u32,
    /// Duplicate ACK count (dupack_cnt).
    pub dupack_cnt: u8,
    /// A TX-poll timer is armed for this flow (rate pacing).
    pub tx_timer_armed: bool,
    /// Slow-path stall detection: `seq` sampled at the last control loop.
    pub last_una_off: u64,
    /// Control intervals the left edge has been stalled with data out.
    pub stall_intervals: u32,
}

impl FpSendRel {
    /// Component state at flow installation.
    pub fn new(tx: ByteRing, iss: u32) -> FpSendRel {
        FpSendRel {
            tx,
            tx_sent: 0,
            max_sent_off: 0,
            iss,
            dupack_cnt: 0,
            tx_timer_armed: false,
            last_una_off: 0,
            stall_intervals: 0,
        }
    }

    /// Absolute TX offset of the next unsent byte.
    pub fn nxt_off(&self) -> u64 {
        self.tx.start_offset() + self.tx_sent
    }

    /// Releases `newly` cumulatively acknowledged bytes from the ring and
    /// the in-flight count; false on ring-accounting failure (the caller
    /// degrades by ignoring the ACK).
    pub fn consume_acked(&mut self, newly: u64) -> bool {
        if self.tx.consume(newly).is_err() {
            return false;
        }
        self.tx_sent = self.tx_sent.saturating_sub(newly);
        true
    }

    /// Progress at the left edge: restart duplicate-ACK counting.
    pub fn reset_dupacks(&mut self) {
        self.dupack_cnt = 0;
    }

    /// Counts one duplicate ACK; returns the new count.
    pub fn count_dupack(&mut self) -> u8 {
        self.dupack_cnt = self.dupack_cnt.saturating_add(1);
        self.dupack_cnt
    }

    /// Fast recovery: reset the sender as if unacked segments were never
    /// sent (§3.1).
    pub fn reset_for_fast_rexmit(&mut self) {
        self.dupack_cnt = 0;
        self.tx_sent = 0;
    }

    /// Slow-path-triggered go-back-N: rewind everything in flight.
    pub fn rewind_for_retransmit(&mut self) {
        self.tx_sent = 0;
        self.dupack_cnt = 0;
    }

    /// Records `n` freshly transmitted bytes.
    pub fn note_sent(&mut self, n: u64) {
        self.tx_sent += n;
        self.max_sent_off = self.max_sent_off.max(self.nxt_off());
    }

    /// A pacing timer was armed for this flow.
    pub fn arm_tx_timer(&mut self) {
        self.tx_timer_armed = true;
    }

    /// The pacing timer fired (or was consumed).
    pub fn clear_tx_timer(&mut self) {
        self.tx_timer_armed = false;
    }

    /// Counts one stalled control interval; returns the new count.
    pub fn bump_stall(&mut self) -> u32 {
        self.stall_intervals += 1;
        self.stall_intervals
    }

    /// The left edge moved (or nothing is outstanding): clear the stall.
    pub fn clear_stall(&mut self) {
        self.stall_intervals = 0;
    }

    /// Samples the left edge for the next control-loop stall check.
    pub fn sample_una(&mut self) {
        self.last_una_off = self.tx.start_offset();
    }
}

/// Receive-reliability component: the receive ring and the single
/// tracked out-of-order interval.
#[derive(Debug)]
pub struct FpRecvRel {
    /// Per-flow receive payload buffer in user-space memory
    /// (rx_start|size|head|tail). `end_offset` is the in-order frontier;
    /// `start_offset` advances as the application reads.
    pub rx: ByteRing,
    /// Peer initial sequence number; peer seq = irs + 1 + rx offset.
    pub irs: u32,
    /// Out-of-order interval start as an absolute RX stream offset
    /// (ooo_start); meaningful when `ooo_len > 0`.
    pub ooo_start: u64,
    /// Out-of-order interval length (ooo_len).
    pub ooo_len: u32,
}

impl FpRecvRel {
    /// Component state at flow installation.
    pub fn new(rx: ByteRing, irs: u32) -> FpRecvRel {
        FpRecvRel {
            rx,
            irs,
            ooo_start: 0,
            ooo_len: 0,
        }
    }

    /// The gap closed (or the interval merged): drop the interval.
    pub fn clear_ooo(&mut self) {
        self.ooo_len = 0;
    }

    /// Starts tracking a fresh out-of-order interval.
    pub fn set_ooo(&mut self, start: u64, len: u32) {
        self.ooo_start = start;
        self.ooo_len = len;
    }

    /// Extends the tracked interval at its tail.
    pub fn grow_ooo_tail(&mut self, n: u32) {
        self.ooo_len += n;
    }

    /// Extends the tracked interval at its head (new start, longer run).
    pub fn grow_ooo_head(&mut self, new_start: u64, n: u32) {
        self.ooo_start = new_start;
        self.ooo_len += n;
    }
}

/// Flow-control component: the peer's advertised window and our own
/// window-update bookkeeping.
#[derive(Debug)]
pub struct FpFlowCtrl {
    /// Remote receive window in bytes, already scaled (window field).
    pub snd_wnd: u64,
    /// Peer window scale shift (negotiated by the slow path).
    pub peer_wscale: u8,
    /// The last advertised window was below one MSS; an RX-bump (the
    /// application reading) should then emit an explicit window update.
    pub win_closed: bool,
}

impl FpFlowCtrl {
    /// Component state at flow installation.
    pub fn new(snd_wnd: u64, peer_wscale: u8) -> FpFlowCtrl {
        FpFlowCtrl {
            snd_wnd,
            peer_wscale,
            win_closed: false,
        }
    }

    /// Updates the peer window (already scaled by the caller, which reads
    /// `peer_wscale` from this component).
    pub fn update_wnd(&mut self, scaled: u64) {
        self.snd_wnd = scaled;
    }

    /// Records whether the advertised window has collapsed below one MSS.
    pub fn set_win_closed(&mut self, closed: bool) {
        self.win_closed = closed;
    }
}

/// Congestion-control component: the rate bucket, the feedback counters
/// the fast path accumulates for the slow path, and the slow-path control
/// law's persistent state.
#[derive(Debug)]
pub struct FpCongCtrl {
    /// Congestion window in bytes when the slow path runs a window-based
    /// algorithm; `u64::MAX` under pure rate control.
    pub cwnd: u64,
    /// Rate bucket (inlined; the paper stores an index into a bucket table).
    pub bucket: RateBucket,
    /// Acknowledged bytes since the last slow-path control iteration
    /// (cnt_ackb).
    pub cnt_ackb: u64,
    /// ECN-echoed bytes since the last control iteration (cnt_ecnb).
    pub cnt_ecnb: u64,
    /// Fast retransmits since the last control iteration (cnt_frexmits).
    pub cnt_frexmits: u8,
    /// The last data segment received was CE-marked (drives the DCTCP
    /// per-packet ECN echo).
    pub last_seg_ce: bool,
    /// Persistent control-law state (shared `tas-cc` rate facet).
    pub state: CcState,
}

impl FpCongCtrl {
    /// Component state at flow installation.
    pub fn new(bucket: RateBucket) -> FpCongCtrl {
        FpCongCtrl {
            cwnd: u64::MAX,
            bucket,
            cnt_ackb: 0,
            cnt_ecnb: 0,
            cnt_frexmits: 0,
            last_seg_ce: false,
            state: CcState::new(),
        }
    }

    /// Records the CE mark state of the data segment just received.
    pub fn note_ce(&mut self, ce: bool) {
        self.last_seg_ce = ce;
    }

    /// Counts cumulatively acknowledged bytes (and their ECN echo) for
    /// the next control iteration.
    pub fn count_acked(&mut self, newly: u64, ece: bool) {
        self.cnt_ackb += newly;
        if ece {
            self.cnt_ecnb += newly;
        }
    }

    /// A duplicate ACK carried ECE: count a nominal MSS of marked bytes
    /// so the slow path sees congestion feedback even without progress.
    pub fn count_nominal_mark(&mut self, mss: u64) {
        self.cnt_ecnb += mss;
        self.cnt_ackb += mss;
    }

    /// Counts one fast retransmission (loss signal for the control loop).
    pub fn count_fast_rexmit(&mut self) {
        self.cnt_frexmits = self.cnt_frexmits.saturating_add(1);
    }

    /// Slow-path rate update: converts an unlimited bucket or retunes the
    /// existing one (preserving accrued credit).
    pub fn apply_rate(&mut self, bits_per_sec: u64, burst: u64, now: SimTime) {
        if self.bucket.is_unlimited() {
            self.bucket = RateBucket::limited(bits_per_sec, burst, now);
        } else {
            self.bucket.burst = burst;
            self.bucket.set_rate_bps(bits_per_sec, now);
        }
    }

    /// Drains the accumulated feedback counters into a control-law input.
    pub fn take_feedback(&mut self, rtt_est_us: u32) -> RateFeedback {
        let fb = RateFeedback {
            ackb: self.cnt_ackb,
            ecnb: self.cnt_ecnb,
            frexmits: self.cnt_frexmits,
            rtt_est_us,
        };
        self.cnt_ackb = 0;
        self.cnt_ecnb = 0;
        self.cnt_frexmits = 0;
        fb
    }

    /// Runs one control-law iteration over this flow's persistent state.
    pub fn rate_iteration(
        &mut self,
        algo: &dyn CongCtrl,
        fb: RateFeedback,
        current_bps: u64,
        interval_secs: f64,
    ) -> u64 {
        algo.rate_iteration(&mut self.state, fb, current_bps, interval_secs)
    }
}

/// Operational per-flow state.
///
/// The protocol fields correspond 1:1 to Table 3, grouped by owning
/// component; the payload rings own the `rx|tx_start/size/head/tail`
/// geometry (a [`ByteRing`] *is* that buffer — its
/// `start_offset`/`end_offset` are the head/tail fields), and a few
/// simulation-only fields (timer arming, slow-path stall tracking) are
/// kept outside the architectural byte count.
#[derive(Debug)]
pub struct FlowState {
    /// Connection management (identity, timestamps, lifecycle).
    pub conn: FpConnMgmt,
    /// Send reliability (tx ring, in-flight, recovery, stalls).
    pub snd: FpSendRel,
    /// Receive reliability (rx ring, out-of-order interval).
    pub rcv: FpRecvRel,
    /// Flow control (peer window, window updates).
    pub fc: FpFlowCtrl,
    /// Congestion control (bucket, feedback counters, law state).
    pub cc: FpCongCtrl,
}

/// Token-bucket rate limiter enforced by the fast path, configured by the
/// slow path (Figure 2's per-flow `bucket`).
#[derive(Clone, Copy, Debug)]
pub struct RateBucket {
    /// Allowed rate in bytes/second; `u64::MAX` disables pacing.
    pub rate_bps: u64,
    /// Accumulated send credit in bytes.
    pub tokens: u64,
    /// Last refill instant.
    pub last_refill: SimTime,
    /// Burst cap in bytes.
    pub burst: u64,
}

impl RateBucket {
    /// An unlimited bucket (window-mode or disabled CC).
    pub fn unlimited() -> RateBucket {
        RateBucket {
            rate_bps: u64::MAX,
            tokens: u64::MAX,
            last_refill: SimTime::ZERO,
            burst: u64::MAX,
        }
    }

    /// A bucket limited to `bits_per_sec`, with a burst of `burst` bytes.
    pub fn limited(bits_per_sec: u64, burst: u64, now: SimTime) -> RateBucket {
        RateBucket {
            rate_bps: bits_per_sec / 8,
            tokens: burst.min(bits_per_sec / 8),
            last_refill: now,
            burst,
        }
    }

    /// True when pacing is disabled.
    pub fn is_unlimited(&self) -> bool {
        self.rate_bps == u64::MAX
    }

    /// Refills credit for elapsed time. Fractional credit is never
    /// discarded: `last_refill` only advances by the time actually
    /// converted into whole bytes, so frequent polls at low rates cannot
    /// starve the bucket.
    pub fn refill(&mut self, now: SimTime) {
        if self.is_unlimited() {
            return;
        }
        if now <= self.last_refill {
            return;
        }
        let dt = now - self.last_refill;
        let add = (self.rate_bps as u128 * dt.as_ps() as u128 / 1_000_000_000_000) as u64;
        if self.tokens.saturating_add(add) >= self.burst {
            self.tokens = self.burst;
            self.last_refill = now;
            return;
        }
        if add > 0 {
            self.tokens += add;
            // Advance only by the time consumed for `add` whole bytes.
            let used_ps = (add as u128 * 1_000_000_000_000 / self.rate_bps as u128) as u64;
            self.last_refill += SimTime::from_ps(used_ps);
        }
        // add == 0: keep last_refill so the fraction keeps accruing.
    }

    /// Consumes `n` bytes of credit.
    pub fn consume(&mut self, n: u64) {
        if !self.is_unlimited() {
            self.tokens = self.tokens.saturating_sub(n);
        }
    }

    /// Updates the rate, preserving accumulated credit (clamped to burst).
    ///
    /// The sub-byte time remainder still accruing at the old rate is
    /// rescaled so its byte value carries over unchanged; leaving it at
    /// the old timestamp would re-price it at the new rate (free credit
    /// on every rate increase, lost credit on every decrease — and the
    /// control loop changes rates thousands of times per second).
    pub fn set_rate_bps(&mut self, bits_per_sec: u64, now: SimTime) {
        self.refill(now);
        let new_rate = bits_per_sec / 8;
        if !self.is_unlimited() && new_rate > 0 && now > self.last_refill {
            let leftover_ps = (now - self.last_refill).as_ps() as u128;
            let scaled = leftover_ps * self.rate_bps as u128 / new_rate as u128;
            let back = SimTime::from_ps(scaled.min(now.as_ps() as u128) as u64);
            self.last_refill = now - back;
        } else {
            self.last_refill = now;
        }
        self.rate_bps = new_rate;
        self.tokens = self.tokens.min(self.burst);
    }

    /// Time until `n` bytes of credit are available (zero if ready now).
    pub fn time_until(&self, n: u64, now: SimTime) -> SimTime {
        if self.is_unlimited() {
            return SimTime::ZERO;
        }
        let mut b = *self;
        b.refill(now);
        if b.tokens >= n {
            return SimTime::ZERO;
        }
        let missing = n - b.tokens;
        if b.rate_bps == 0 {
            return SimTime::MAX;
        }
        // Round up so the credit is guaranteed present at the deadline.
        let ps = (missing as u128 * 1_000_000_000_000).div_ceil(b.rate_bps as u128);
        SimTime::from_ps(ps as u64)
    }
}

impl FlowState {
    /// Local sequence number for an absolute TX stream offset.
    pub fn seq_of(&self, off: u64) -> u32 {
        self.snd.iss.wrapping_add(1).wrapping_add(off as u32)
    }

    /// Peer sequence number for an absolute RX stream offset.
    pub fn rcv_seq_of(&self, off: u64) -> u32 {
        self.rcv.irs.wrapping_add(1).wrapping_add(off as u32)
    }

    /// Absolute TX offset of the next unsent byte.
    pub fn nxt_off(&self) -> u64 {
        self.snd.nxt_off()
    }

    /// Receive window to advertise (free in-order buffer space).
    pub fn adv_window(&self) -> u64 {
        // Space past the committed frontier, minus the staged OOO interval.
        (self.rcv.rx.free() as u64).saturating_sub(self.rcv.ooo_len as u64)
    }
}

/// The fast path's flow table: a [`Slab`] arena of per-flow state plus a
/// [`FlowIndex`] 4-tuple index.
///
/// Flow ids are dense slab slot indices — the per-packet path resolves a
/// 4-tuple to an id once (FNV-1a open addressing, no SipHash) and all
/// further state access is a direct slot dereference. Freed slots recycle
/// LIFO, so id assignment is deterministic run-to-run.
#[derive(Debug, Default)]
pub struct FlowTable {
    slots: Slab<FlowState>,
    index: FlowIndex,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Installs a flow, returning its id.
    ///
    /// Installing a key twice is a slow-path bug; debug/audit builds
    /// assert, release builds overwrite the index entry and keep going.
    pub fn insert(&mut self, flow: FlowState) -> u32 {
        let key = flow.conn.key;
        let id = self.slots.insert(flow);
        let prev = self.index.insert(key, id);
        debug_assert!(prev.is_none(), "flow {key} already installed");
        id
    }

    /// Looks up a flow id by 4-tuple.
    pub fn lookup(&self, key: &FlowKey) -> Option<u32> {
        self.index.get(key)
    }

    /// Accesses a flow by id.
    pub fn get(&self, id: u32) -> Option<&FlowState> {
        self.slots.get(id)
    }

    /// Mutably accesses a flow by id.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut FlowState> {
        self.slots.get_mut(id)
    }

    /// Removes a flow, returning its state.
    pub fn remove(&mut self, id: u32) -> Option<FlowState> {
        let flow = self.slots.remove(id)?;
        self.index.remove(&flow.conn.key);
        Some(flow)
    }

    /// Iterates over (id, flow) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &FlowState)> {
        self.slots.iter()
    }

    /// Iterates over (id, flow) pairs, mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut FlowState)> {
        self.slots.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn table3_state_is_102_bytes() {
        // The paper: "In all, we require 102 bytes of per-flow state."
        // (Computed from Table 3 field widths; read back through a
        // function so the comparison is a real runtime check.)
        let bytes = std::hint::black_box(FLOW_STATE_BYTES);
        assert_eq!(bytes, 102);
    }

    #[test]
    fn paper_20k_flows_per_core_claim() {
        // 2 MB of L2/3 per core / 102 bytes > 20,000 flows (paper §3.1).
        let per_core_cache = std::hint::black_box(2u64 << 20);
        assert!(per_core_cache / FLOW_STATE_BYTES > 20_000);
    }

    #[test]
    fn rate_bucket_refills_at_rate() {
        let t0 = SimTime::ZERO;
        let mut b = RateBucket::limited(8_000_000, 1_000_000, t0); // 1 MB/s.
        b.tokens = 0;
        b.refill(t0 + SimTime::from_ms(10)); // 10 ms at 1 MB/s = 10 KB.
        assert_eq!(b.tokens, 10_000);
        b.consume(4_000);
        assert_eq!(b.tokens, 6_000);
    }

    #[test]
    fn rate_bucket_burst_cap() {
        let mut b = RateBucket::limited(8_000_000_000, 10_000, SimTime::ZERO);
        b.refill(SimTime::from_secs(1));
        assert_eq!(b.tokens, 10_000, "capped at burst");
    }

    #[test]
    fn rate_bucket_time_until() {
        let t0 = SimTime::ZERO;
        let mut b = RateBucket::limited(8_000_000, 1_000_000, t0);
        b.tokens = 0;
        b.last_refill = t0;
        // Need 1000 bytes at 1 MB/s -> 1 ms.
        assert_eq!(b.time_until(1_000, t0), SimTime::from_ms(1));
        assert_eq!(
            RateBucket::unlimited().time_until(1 << 30, t0),
            SimTime::ZERO
        );
    }

    #[test]
    fn rate_bucket_set_rate_preserves_credit() {
        let t0 = SimTime::ZERO;
        let mut b = RateBucket::limited(8_000_000, 1 << 20, t0);
        b.tokens = 500;
        b.set_rate_bps(16_000_000, t0);
        assert_eq!(b.rate_bps, 2_000_000);
        assert_eq!(b.tokens, 500);
    }

    fn dummy_flow(port: u16) -> FlowState {
        FlowState {
            conn: FpConnMgmt::new(
                port as u64,
                0,
                FlowKey::new(
                    Ipv4Addr::new(10, 0, 0, 1),
                    80,
                    Ipv4Addr::new(10, 0, 0, 2),
                    port,
                ),
                tas_proto::MacAddr::for_host(2),
                0,
            ),
            snd: FpSendRel::new(ByteRing::new(1024), 100),
            rcv: FpRecvRel::new(ByteRing::new(1024), 200),
            fc: FpFlowCtrl::new(1024, 0),
            cc: FpCongCtrl::new(RateBucket::unlimited()),
        }
    }

    #[test]
    fn flow_table_insert_lookup_remove_reuses_slots() {
        let mut t = FlowTable::new();
        let id1 = t.insert(dummy_flow(1000));
        let id2 = t.insert(dummy_flow(1001));
        assert_ne!(id1, id2);
        assert_eq!(t.len(), 2);
        let k = t.get(id1).unwrap().conn.key;
        assert_eq!(t.lookup(&k), Some(id1));
        t.remove(id1);
        assert_eq!(t.lookup(&k), None);
        let id3 = t.insert(dummy_flow(1002));
        assert_eq!(id3, id1, "slot reused");
    }

    #[test]
    fn seq_offset_mapping() {
        let f = dummy_flow(7);
        assert_eq!(f.seq_of(0), 101);
        assert_eq!(f.rcv_seq_of(5), 206);
        assert_eq!(f.nxt_off(), 0);
    }

    #[test]
    fn adv_window_excludes_ooo_interval() {
        let mut f = dummy_flow(7);
        assert_eq!(f.adv_window(), 1024);
        f.rcv.ooo_len = 100;
        assert_eq!(f.adv_window(), 924);
    }
}
