//! Behavioral proofs for the adversarial clients (`tas_apps::adversary`):
//! the slow reader really pins its rx byte-ring full, the ACK-division
//! client really emits sub-MSS ACK cadences, and the window stuffer
//! really places its configured window sequence on the wire.

use std::net::Ipv4Addr;
use tas::{TasConfig, TasHost};
use tas_apps::adversary::{
    kv_resp_size, AdvMode, AdversaryConfig, AdversaryHost, SlowReader,
};
use tas_apps::kv::KvServer;
use tas_netsim::app::App;
use tas_netsim::topo::{build_star, host_ip, HostSpec};
use tas_netsim::{NetMsg, NicConfig, PortConfig};
use tas_sim::{AgentId, Sim, SimTime};

const PORT: u16 = 7;

fn server_ip() -> Ipv4Addr {
    host_ip(0)
}

/// Star with a TAS KV server at host 0 and one client built by `client`.
fn kv_star(
    seed: u64,
    client: &mut dyn FnMut(&mut Sim<NetMsg>, HostSpec) -> AgentId,
) -> (Sim<NetMsg>, Vec<AgentId>) {
    let mut sim: Sim<NetMsg> = Sim::new(seed);
    let mut factory = |sim: &mut Sim<NetMsg>, spec: HostSpec| {
        if spec.index == 0 {
            let app: Box<dyn App> = Box::new(KvServer::new(PORT));
            sim.add_agent(Box::new(TasHost::new(
                spec.ip,
                spec.mac,
                spec.nic,
                TasConfig::rpc_bench(1, 1),
                spec.uplink,
                app,
            )))
        } else {
            client(sim, spec)
        }
    };
    let topo = build_star(
        &mut sim,
        2,
        |_| PortConfig::tengig(),
        |_| NicConfig::client_10g(1),
        &mut factory,
    );
    for (i, &h) in topo.hosts.iter().enumerate() {
        // Both TasHost and AdversaryHost start on timer kind 0.
        sim.inject_timer(SimTime::from_us(i as u64), h, 0, 0);
    }
    (sim, topo.hosts)
}

fn slow_reader_star(seed: u64, burst: u32, resume_at: SimTime) -> (Sim<NetMsg>, Vec<AgentId>) {
    kv_star(seed, &mut |sim, spec| {
        let mut app = SlowReader::new(server_ip(), PORT, 1, burst);
        app.resume_at = resume_at;
        let mut cfg = TasConfig::rpc_bench(1, 1);
        cfg.rx_buf = 4096;
        sim.add_agent(Box::new(TasHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            cfg,
            spec.uplink,
            Box::new(app),
        )))
    })
}

#[test]
fn slow_reader_pins_rx_ring_full() {
    // 200 pipelined GETs => 200 * 67 = 13400 response bytes against a
    // 4096-byte rx ring the app never drains.
    let (mut sim, hosts) = slow_reader_star(71, 200, SimTime::ZERO);
    sim.run_until(SimTime::from_ms(200));
    let client = sim.agent::<TasHost>(hosts[1]);
    let app = client.app_as::<SlowReader>();
    assert_eq!(app.sent, 200, "all requests issued");
    assert!(app.readable_events > 0, "data did arrive");
    assert_eq!(app.bytes_read, 0, "the slow reader never reads");
    // The ring is pinned full: in-order rx bytes reached ring capacity
    // (within one MSS of it, since segments land whole) and then stopped.
    let rx_t1 = client.fp_stats().bytes_rx;
    assert!(
        (4096 - 1448..=4096).contains(&rx_t1),
        "rx ring pinned at capacity, got {rx_t1} of 4096"
    );
    // No further delivery while the reader stays deaf.
    sim.run_until(SimTime::from_ms(400));
    let rx_t2 = sim.agent::<TasHost>(hosts[1]).fp_stats().bytes_rx;
    assert_eq!(rx_t1, rx_t2, "no rx progress while pinned");
    // The server is still holding the undelivered remainder for this
    // flow: its app accepted the requests but the responses cannot drain.
    let server = sim.agent::<TasHost>(hosts[0]);
    assert!(server.app_as::<KvServer>().gets >= 40, "server kept serving");
}

#[test]
fn slow_reader_drains_after_resume() {
    // Same setup, but the reader wakes at t=300ms and drains everything —
    // proving the bytes were pent up, not lost.
    let burst = 100u32;
    let (mut sim, hosts) = slow_reader_star(72, burst, SimTime::from_ms(300));
    sim.run_until(SimTime::from_ms(250));
    assert_eq!(
        sim.agent::<TasHost>(hosts[1]).app_as::<SlowReader>().bytes_read,
        0,
        "nothing read before the resume instant"
    );
    sim.run_until(SimTime::from_ms(2000));
    let app = sim.agent::<TasHost>(hosts[1]).app_as::<SlowReader>();
    let expected = burst as u64 * kv_resp_size() as u64;
    assert_eq!(
        app.bytes_read, expected,
        "every pent-up response byte is delivered after resume"
    );
}

fn adversary_star(seed: u64, mode: AdvMode) -> (Sim<NetMsg>, Vec<AgentId>) {
    kv_star(seed, &mut |sim, spec| {
        let cfg = AdversaryConfig::kv(server_ip(), PORT, 1, mode.clone());
        sim.add_agent(Box::new(AdversaryHost::new(
            spec.ip,
            spec.mac,
            spec.nic,
            spec.uplink,
            cfg,
        )))
    })
}

#[test]
fn ack_division_emits_sub_mss_cadence() {
    let chunk = 16u32;
    let (mut sim, hosts) = adversary_star(73, AdvMode::AckDivision { chunk });
    sim.run_until(SimTime::from_ms(200));
    let adv = sim.agent::<AdversaryHost>(hosts[1]);
    assert_eq!(adv.established, 1);
    assert!(adv.done >= 50, "closed loop made progress: {}", adv.done);
    assert!(!adv.ack_deltas.is_empty());
    // Every pure-ACK advance is sub-MSS (at most `chunk` bytes).
    assert!(
        adv.ack_deltas.iter().all(|&d| d > 0 && d <= chunk),
        "all ACK advances within the configured sliver"
    );
    // A 67-byte response acked 16 bytes at a time needs 5 ACKs; the ACK
    // count dwarfs the exchange count.
    assert!(
        adv.acks_sent >= adv.done * (kv_resp_size() as u64).div_ceil(chunk as u64),
        "ACK amplification: {} acks for {} exchanges",
        adv.acks_sent,
        adv.done
    );
}

#[test]
fn window_stuffer_advertises_configured_sequence() {
    let pattern: Vec<u16> = vec![64, 16, 1448];
    let (mut sim, hosts) = adversary_star(
        74,
        AdvMode::WindowStuff {
            pattern: pattern.clone(),
        },
    );
    sim.run_until(SimTime::from_ms(400));
    let adv = sim.agent::<AdversaryHost>(hosts[1]);
    assert_eq!(adv.established, 1);
    assert!(adv.done >= 1, "tiny windows slow but do not stop the loop");
    assert!(adv.adv_history.len() >= 12, "enough segments to check");
    for (i, &w) in adv.adv_history.iter().enumerate() {
        assert_eq!(
            w,
            pattern[i % pattern.len()],
            "advertised window {i} follows the intended cycle"
        );
    }
}
