//! Application-logic tests against a mock stack: framing, carry-over on
//! short writes, FlexStorm's pipeline bookkeeping — no network involved.

use std::collections::{HashMap, VecDeque};
use std::net::Ipv4Addr;
use tas_apps::echo::{EchoServer, ServerMode};
use tas_apps::flexstorm::{FlexStormNode, TUPLE_SIZE};
use tas_apps::kv::{KvServer, OP_GET, OP_SET, REQ_HDR, VAL_SIZE};
use tas_apps::util::SendBuf;
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_sim::SimTime;

/// A scriptable in-memory stack.
#[derive(Default)]
struct MockApi {
    now: SimTime,
    /// Bytes each socket will deliver on the next recv.
    rx: HashMap<SockId, VecDeque<u8>>,
    /// Everything sent per socket.
    tx: HashMap<SockId, Vec<u8>>,
    /// Remaining send budget per socket (None = unlimited).
    budget: HashMap<SockId, usize>,
    listens: Vec<u16>,
    connects: Vec<(Ipv4Addr, u16)>,
    next_sock: SockId,
    timers: Vec<(SimTime, u64)>,
    posts: Vec<(u16, u64)>,
    charged: u64,
}

impl MockApi {
    fn feed(&mut self, sock: SockId, data: &[u8]) {
        self.rx.entry(sock).or_default().extend(data.iter());
    }

    fn sent(&self, sock: SockId) -> &[u8] {
        self.tx.get(&sock).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

impl StackApi for MockApi {
    fn now(&self) -> SimTime {
        self.now
    }
    fn listen(&mut self, port: u16) {
        self.listens.push(port);
    }
    fn connect(&mut self, ip: Ipv4Addr, port: u16) -> SockId {
        self.connects.push((ip, port));
        let s = self.next_sock;
        self.next_sock += 1;
        s
    }
    fn send(&mut self, sock: SockId, data: &[u8]) -> usize {
        let budget = self.budget.get(&sock).copied().unwrap_or(usize::MAX);
        let n = data.len().min(budget);
        if budget != usize::MAX {
            self.budget.insert(sock, budget - n);
        }
        self.tx
            .entry(sock)
            .or_default()
            .extend_from_slice(&data[..n]);
        n
    }
    fn recv(&mut self, sock: SockId, max: usize) -> Vec<u8> {
        let q = self.rx.entry(sock).or_default();
        let n = max.min(q.len());
        q.drain(..n).collect()
    }
    fn readable(&self, sock: SockId) -> usize {
        self.rx.get(&sock).map(|q| q.len()).unwrap_or(0)
    }
    fn close(&mut self, _sock: SockId) {}
    fn charge_app_cycles(&mut self, cycles: u64) {
        self.charged += cycles;
    }
    fn set_app_timer(&mut self, delay: SimTime, token: u64) {
        self.timers.push((self.now + delay, token));
    }
    fn post(&mut self, context: u16, token: u64) {
        self.posts.push((context, token));
    }
}

#[test]
fn send_buf_carries_partial_writes_in_order() {
    let mut api = MockApi::default();
    api.budget.insert(1, 5);
    let mut out = SendBuf::default();
    assert_eq!(out.send(&mut api, 1, b"hello world"), 5);
    assert_eq!(out.pending(1), 6);
    // More data queues behind the carry; nothing is reordered.
    out.send(&mut api, 1, b"!");
    api.budget.insert(1, usize::MAX);
    out.on_writable(&mut api, 1);
    assert_eq!(api.sent(1), b"hello world!");
    assert_eq!(out.pending(1), 0);
}

#[test]
fn echo_server_reassembles_split_messages() {
    let mut api = MockApi::default();
    let mut srv = EchoServer::new(7, 8, ServerMode::Echo, 100);
    srv.on_start(&mut api);
    assert_eq!(api.listens, vec![7]);
    // A message arrives in two fragments; count only full messages.
    api.feed(3, b"abcd");
    srv.on_event(AppEvent::Readable { sock: 3 }, &mut api);
    assert_eq!(srv.messages, 0);
    api.feed(3, b"efghXYZ");
    srv.on_event(AppEvent::Readable { sock: 3 }, &mut api);
    assert_eq!(srv.messages, 1, "one full 8-byte message");
    // Echo mode echoes every byte, message-aligned or not.
    assert_eq!(api.sent(3), b"abcdefghXYZ");
    assert_eq!(srv.bytes_in, 11);
}

#[test]
fn kv_server_parses_and_answers() {
    let mut api = MockApi::default();
    let mut kv = KvServer::new(11211);
    kv.on_start(&mut api);
    // SET key 9, then GET it back; requests are fixed-size frames.
    let mut set = vec![0u8; REQ_HDR + VAL_SIZE];
    set[0] = OP_SET;
    set[1..5].copy_from_slice(&9u32.to_be_bytes());
    for (i, b) in set[REQ_HDR..].iter_mut().enumerate() {
        *b = i as u8;
    }
    let mut get = vec![0u8; REQ_HDR + VAL_SIZE];
    get[0] = OP_GET;
    get[1..5].copy_from_slice(&9u32.to_be_bytes());
    api.feed(5, &set);
    api.feed(5, &get);
    kv.on_event(AppEvent::Readable { sock: 5 }, &mut api);
    assert_eq!(kv.sets, 1);
    assert_eq!(kv.gets, 1);
    let out = api.sent(5);
    assert_eq!(out.len(), 2 * (3 + VAL_SIZE), "two responses");
    assert_eq!(out[0], 0, "SET ok");
    let get_resp = &out[3 + VAL_SIZE..];
    assert_eq!(get_resp[0], 0, "GET hit");
    assert_eq!(&get_resp[3..3 + 4], &[0, 1, 2, 3], "stored value returned");
    assert!(api.charged > 0, "app cycles charged per op");
}

#[test]
fn kv_get_miss_flagged() {
    let mut api = MockApi::default();
    let mut kv = KvServer::new(11211);
    let mut get = vec![0u8; REQ_HDR + VAL_SIZE];
    get[0] = OP_GET;
    get[1..5].copy_from_slice(&1234u32.to_be_bytes());
    api.feed(5, &get);
    kv.on_event(AppEvent::Readable { sock: 5 }, &mut api);
    assert_eq!(api.sent(5)[0], 1, "miss status");
}

#[test]
fn flexstorm_pipeline_demux_work_mux() {
    let mut api = MockApi::default();
    let mut node = FlexStormNode::new(7000, 2, Some((Ipv4Addr::new(10, 0, 0, 2), 7000)));
    node.max_per_send = 64;
    node.on_start(&mut api);
    assert_eq!(api.listens, vec![7000]);
    assert_eq!(api.connects.len(), 1, "downstream connection opened");
    let out_sock = 0; // First mock-connect sock id.

    // Three tuples arrive from upstream on sock 9.
    api.feed(9, &[0x7e; 3 * TUPLE_SIZE]);
    node.on_event(AppEvent::Readable { sock: 9 }, &mut api);
    assert_eq!(node.stats.tuples_in, 3);
    // The demux posted wakeups for both workers (round-robin).
    let worker_posts: Vec<u16> = api.posts.iter().map(|(c, _)| *c).collect();
    assert!(worker_posts.contains(&1) && worker_posts.contains(&2));

    // Drive the worker wakeups.
    let posts = std::mem::take(&mut api.posts);
    for (_, token) in posts {
        node.on_event(AppEvent::Timer { token }, &mut api);
    }
    assert_eq!(node.stats.tuples_processed, 3);
    // The mux flush timer was armed (queue below the batch threshold).
    assert!(!api.timers.is_empty());
    // Fire the flush: tuples leave downstream.
    let (_, token) = api.timers.pop().expect("flush timer");
    node.on_event(AppEvent::Timer { token }, &mut api);
    assert_eq!(node.stats.tuples_out, 3);
    assert_eq!(api.sent(out_sock).len(), 3 * TUPLE_SIZE);
}

#[test]
fn flexstorm_split_tuple_framing_survives_short_writes() {
    let mut api = MockApi::default();
    let mut node = FlexStormNode::new(7000, 1, Some((Ipv4Addr::new(10, 0, 0, 2), 7000)));
    node.max_per_send = 64;
    node.on_start(&mut api);
    let out_sock = 0;
    // Only 100 bytes of socket budget: the second tuple is split.
    api.budget.insert(out_sock, 100);
    api.feed(9, &[0x7e; 2 * TUPLE_SIZE]);
    node.on_event(AppEvent::Readable { sock: 9 }, &mut api);
    for (_, token) in std::mem::take(&mut api.posts) {
        node.on_event(AppEvent::Timer { token }, &mut api);
    }
    for (_, token) in std::mem::take(&mut api.timers) {
        node.on_event(AppEvent::Timer { token }, &mut api);
    }
    assert_eq!(api.sent(out_sock).len(), 100, "short write");
    assert_eq!(node.stats.tuples_out, 1, "only the whole tuple counted");
    // Budget restored: the writable event completes the split tuple.
    api.budget.insert(out_sock, usize::MAX);
    node.on_event(AppEvent::Writable { sock: out_sock }, &mut api);
    assert_eq!(
        api.sent(out_sock).len(),
        2 * TUPLE_SIZE,
        "framing realigned after the partial write"
    );
    assert_eq!(node.stats.tuples_out, 2);
}
