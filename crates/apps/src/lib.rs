//! Evaluation applications from the paper, written against the
//! stack-agnostic [`tas_netsim::app`] interface so the *same* application
//! binary runs over TAS, Linux-model, IX-model, and mTCP-model hosts —
//! exactly as the paper runs unmodified binaries over TAS and Linux.
//!
//! * [`echo`] — the RPC echo server and closed-loop/pipelined clients
//!   behind Figures 4–6 (connection scalability, short-lived connections,
//!   pipelined RPCs).
//! * [`kv`] — the memcached-like key-value store and its memslap-like
//!   workload clients (Figures 8–9, Tables 5–7): zipf(0.9) key popularity,
//!   90% GET / 10% SET, 32-byte keys, 64-byte values.
//! * [`flexstorm`] — the real-time analytics pipeline of Figure 10 /
//!   Table 8: demultiplexer → workers → batching multiplexer per node,
//!   tuples streaming over TCP between nodes.
//! * [`loadgen`] — a lightweight raw-TCP load-generator *host* (not an
//!   app) able to hold tens of thousands of closed-loop client
//!   connections cheaply; used where the paper uses banks of client
//!   machines whose stacks are not under test.
//! * [`adversary`] — misbehaving clients for the isolation scenarios: a
//!   slow reader that pins its rx byte-ring full, an ACK-division
//!   client, and a receive-window stuffer.

pub mod adversary;
pub mod bulk;
pub mod echo;
pub mod flexstorm;
pub mod flows;
pub mod kv;
pub mod loadgen;
pub mod util;
