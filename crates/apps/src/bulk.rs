//! Bulk-transfer applications (Table 4 compatibility, Fig. 7 loss, and
//! Fig. 13 incast).

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_sim::{impl_as_any, SimTime};

/// Streams data on `conns` connections for the whole run (or until
/// `bytes_per_conn` when nonzero).
pub struct BulkSender {
    server: Ipv4Addr,
    port: u16,
    n_conns: u32,
    /// Per-connection byte budget (0 = unlimited).
    pub bytes_per_conn: u64,
    /// Write chunk size.
    pub chunk: usize,
    sent: BTreeMap<SockId, u64>,
    /// Total payload bytes accepted by the stack.
    pub total_sent: u64,
}

impl BulkSender {
    /// Creates a sender with unlimited per-connection budget.
    pub fn new(server: Ipv4Addr, port: u16, conns: u32) -> Self {
        BulkSender {
            server,
            port,
            n_conns: conns,
            bytes_per_conn: 0,
            chunk: 8192,
            sent: BTreeMap::new(),
            total_sent: 0,
        }
    }

    fn pump(&mut self, sock: SockId, api: &mut dyn StackApi) {
        loop {
            let already = *self.sent.get(&sock).unwrap_or(&0);
            let mut want = self.chunk;
            if self.bytes_per_conn > 0 {
                let left = self.bytes_per_conn.saturating_sub(already);
                if left == 0 {
                    api.close(sock);
                    return;
                }
                want = want.min(left as usize);
            }
            let n = api.send(sock, &vec![0x6b; want]);
            *self.sent.entry(sock).or_insert(0) += n as u64;
            self.total_sent += n as u64;
            if n < want {
                break;
            }
        }
    }
}

impl App for BulkSender {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.n_conns {
            api.connect(self.server, self.port);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Connected { sock } | AppEvent::Writable { sock } => self.pump(sock, api),
            _ => {}
        }
    }

    impl_as_any!();
}

/// Receives bulk data; tracks per-connection byte counts per sampling
/// interval (the Fig. 13 incast measurement: bytes per connection per
/// 100 ms).
pub struct BulkReceiver {
    /// Listening port.
    pub port: u16,
    /// Total payload bytes received.
    pub total: u64,
    /// Per-socket byte count within the current sampling interval.
    pub window_bytes: BTreeMap<SockId, u64>,
    /// Completed interval samples: bytes each connection received in one
    /// interval (across all connections and intervals).
    pub interval_samples: Vec<u64>,
    /// Sampling interval (0 disables; Fig. 13 uses 100 ms).
    pub sample_every: SimTime,
    /// Measurement gate.
    pub measure_from: SimTime,
    sockets: Vec<SockId>,
    armed: bool,
}

impl BulkReceiver {
    /// Creates a receiver without interval sampling.
    pub fn new(port: u16) -> Self {
        BulkReceiver {
            port,
            total: 0,
            window_bytes: BTreeMap::new(),
            interval_samples: Vec::new(),
            sample_every: SimTime::ZERO,
            measure_from: SimTime::ZERO,
            sockets: Vec::new(),
            armed: false,
        }
    }

    /// Enables Fig. 13-style per-interval per-connection sampling.
    pub fn sampling(mut self, every: SimTime, from: SimTime) -> Self {
        self.sample_every = every;
        self.measure_from = from;
        self
    }
}

impl App for BulkReceiver {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(self.port);
        if self.sample_every > SimTime::ZERO {
            self.armed = true;
            api.set_app_timer(self.sample_every, 1);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Accepted { sock, .. } => {
                self.sockets.push(sock);
                self.window_bytes.insert(sock, 0);
            }
            AppEvent::Readable { sock } => {
                let n = api.recv(sock, usize::MAX).len() as u64;
                self.total += n;
                *self.window_bytes.entry(sock).or_insert(0) += n;
            }
            AppEvent::Timer { .. } => {
                let now = api.now();
                if now >= self.measure_from {
                    for &s in &self.sockets {
                        self.interval_samples
                            .push(*self.window_bytes.get(&s).unwrap_or(&0));
                    }
                }
                for v in self.window_bytes.values_mut() {
                    *v = 0;
                }
                api.set_app_timer(self.sample_every, 1);
            }
            AppEvent::Closed { sock } => api.close(sock),
            _ => {}
        }
    }

    impl_as_any!();
}
