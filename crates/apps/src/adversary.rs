//! Adversarial clients for the multi-tenant scenario suite.
//!
//! The paper's isolation claim (§3.6: per-flow fairness, per-flow state,
//! rate enforcement on the fast path) is only meaningful against clients
//! that misbehave. Three classics, each stressing a different resource:
//!
//! * [`SlowReader`] — requests data and never reads it, pinning its own
//!   rx byte-ring full so the server's per-flow tx state stays occupied
//!   at zero window (a receive-livelock / buffer-squatting attack).
//! * ACK division ([`AdvMode::AckDivision`]) — acknowledges responses in
//!   sub-MSS slivers, multiplying the server's per-ACK fast-path work
//!   per byte of useful payload (Savage et al., CCR '99).
//! * Window stuffing ([`AdvMode::WindowStuff`]) — advertises a hostile
//!   receive-window sequence (tiny or oscillating), forcing the server
//!   to emit many small segments per response (silly-window syndrome,
//!   induced deliberately).
//!
//! The slow reader runs above a real stack as a plain [`App`]: its attack
//! is *not reading*, which any socket API permits. The other two need
//! header-level control no socket API grants, so — like the load
//! generator — they are raw host agents crafting TCP segments directly
//! and consuming no modeled CPU.

use crate::loadgen::mac_for_ip;
use crate::util::SendBuf;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_netsim::{HostNic, NetMsg, NicConfig};
use tas_proto::{FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_sim::{impl_as_any, Agent, Ctx, Event, SimTime};

/// Builds the KV GET request the adversaries use as bait: a well-formed
/// request for `key` so the server's normal response path produces the
/// payload the attack then mishandles.
pub fn kv_get_request(key: u32) -> Vec<u8> {
    let mut req = vec![0u8; crate::kv::REQ_HDR + crate::kv::VAL_SIZE];
    req[0] = crate::kv::OP_GET;
    req[1..5].copy_from_slice(&key.to_be_bytes());
    req[5..7].copy_from_slice(&(crate::kv::VAL_SIZE as u16).to_be_bytes());
    req
}

/// KV response size matching [`kv_get_request`].
pub fn kv_resp_size() -> usize {
    crate::kv::RESP_HDR + crate::kv::VAL_SIZE
}

// ---------------------------------------------------------------------
// Slow reader (stack-level App).

/// A client that solicits responses and never reads them.
///
/// On connect it fires `burst` pipelined requests per connection, then
/// ignores every `Readable` notification. The responses fill the
/// connection's rx byte-ring; once full, the advertised window closes and
/// the server's per-flow tx buffer (plus whatever its app has buffered
/// behind the socket) stays pinned for the duration. A well-isolated
/// server keeps serving other tenants; a badly isolated one wedges
/// shared resources behind the stalled flows.
///
/// Set [`SlowReader::resume_at`] to drain everything at a fixed instant
/// (used by tests to prove the data really was pent up, and by scenarios
/// to model a lagging-then-recovering consumer).
pub struct SlowReader {
    server: Ipv4Addr,
    port: u16,
    n_conns: u32,
    /// Pipelined requests fired per connection at connect time.
    pub burst: u32,
    /// When to start reading (ZERO = never).
    pub resume_at: SimTime,
    /// `Readable` notifications received while refusing to read.
    pub readable_events: u64,
    /// Bytes actually read (stays 0 until `resume_at`).
    pub bytes_read: u64,
    /// Requests sent.
    pub sent: u64,
    socks: Vec<SockId>,
    out: SendBuf,
    resumed: bool,
}

/// App-timer token for the resume instant.
const RESUME_TOKEN: u64 = 0x51_0eade6;

impl SlowReader {
    /// Creates a slow reader: `conns` connections, `burst` pipelined
    /// requests each, never reading (set [`SlowReader::resume_at`] to
    /// drain later).
    pub fn new(server: Ipv4Addr, port: u16, conns: u32, burst: u32) -> Self {
        SlowReader {
            server,
            port,
            n_conns: conns,
            burst,
            resume_at: SimTime::ZERO,
            readable_events: 0,
            bytes_read: 0,
            sent: 0,
            socks: Vec::new(),
            out: SendBuf::default(),
            resumed: false,
        }
    }
}

impl App for SlowReader {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.n_conns {
            let sock = api.connect(self.server, self.port);
            self.socks.push(sock);
        }
        if self.resume_at > SimTime::ZERO {
            let now = api.now();
            let delay = if self.resume_at > now {
                self.resume_at - now
            } else {
                SimTime::ZERO
            };
            api.set_app_timer(delay, RESUME_TOKEN);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Connected { sock } => {
                // Solicit a pipelined burst of responses, then go deaf.
                let req = kv_get_request(1);
                for _ in 0..self.burst {
                    self.out.send(api, sock, &req);
                    self.sent += 1;
                }
            }
            AppEvent::Writable { sock } => {
                self.out.on_writable(api, sock);
            }
            AppEvent::Readable { .. } => {
                self.readable_events += 1;
                if self.resumed {
                    for i in 0..self.socks.len() {
                        self.bytes_read += api.recv(self.socks[i], usize::MAX).len() as u64;
                    }
                }
            }
            AppEvent::Timer {
                token: RESUME_TOKEN,
            } => {
                self.resumed = true;
                for i in 0..self.socks.len() {
                    self.bytes_read += api.recv(self.socks[i], usize::MAX).len() as u64;
                }
            }
            _ => {}
        }
    }

    impl_as_any!();
}

// ---------------------------------------------------------------------
// Raw-TCP adversaries (host agents).

/// Timer kinds for [`AdversaryHost`].
pub mod timers {
    /// Start: open every connection.
    pub const INIT: u32 = 0;
    /// Watchdog sweep for stalled requests/handshakes.
    pub const WATCHDOG: u32 = 1;
}

/// Which header-level attack the raw host mounts.
#[derive(Clone, Debug)]
pub enum AdvMode {
    /// Acknowledge response data in `chunk`-byte steps instead of one
    /// cumulative ACK per delivery.
    AckDivision {
        /// ACK advance per segment sent (sub-MSS, e.g. 16).
        chunk: u32,
    },
    /// Advertise this cycling window sequence (raw 16-bit values, no
    /// window scaling) on every segment sent after the handshake.
    WindowStuff {
        /// The advertised-window cycle.
        pattern: Vec<u16>,
    },
}

/// Configuration for [`AdversaryHost`].
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Server address.
    pub server: Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Connections to open.
    pub conns: u32,
    /// Request payload (defaults to [`kv_get_request`] for key 1).
    pub req_template: Vec<u8>,
    /// Expected response payload bytes per request.
    pub resp_size: usize,
    /// The attack.
    pub mode: AdvMode,
    /// Watchdog interval for stalled-request retransmission.
    pub watchdog: SimTime,
}

impl AdversaryConfig {
    /// A KV-speaking adversary of the given mode.
    pub fn kv(server: Ipv4Addr, port: u16, conns: u32, mode: AdvMode) -> Self {
        AdversaryConfig {
            server,
            port,
            conns,
            req_template: kv_get_request(1),
            resp_size: kv_resp_size(),
            mode,
            watchdog: SimTime::from_ms(50),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AdvState {
    SynSent,
    Established,
}

struct AdvConn {
    state: AdvState,
    local_port: u16,
    iss: u32,
    irs: u32,
    /// Request-stream bytes sent.
    sent_off: u64,
    /// Response-stream bytes received in order.
    rcv_off: u64,
    /// Response bytes still expected for the current request.
    awaiting: usize,
    ts_recent: u32,
    last_progress: SimTime,
}

/// Raw-TCP adversarial client host: minimal-but-correct handshake and
/// request loop (mirroring the load generator), with the ACK stream
/// shaped by [`AdvMode`]. Consumes no modeled CPU.
pub struct AdversaryHost {
    cfg: AdversaryConfig,
    ip: Ipv4Addr,
    mac: MacAddr,
    nic: HostNic,
    conns: Vec<AdvConn>,
    by_port: BTreeMap<u16, u32>,
    /// Completed request/response exchanges.
    pub done: u64,
    /// Requests sent.
    pub sent: u64,
    /// Established connections.
    pub established: u64,
    /// Pure ACK segments sent (excludes handshake and request packets).
    pub acks_sent: u64,
    /// ACK-number advances of the pure ACKs, in order (capped log; the
    /// unit tests assert every entry is sub-MSS in division mode).
    pub ack_deltas: Vec<u32>,
    /// Advertised windows placed on the wire after the handshake, in
    /// order (capped log; tests assert it equals the intended cycle).
    pub adv_history: Vec<u16>,
    win_cursor: usize,
}

/// Cap on the diagnostic logs so long scenario runs stay cheap.
const LOG_CAP: usize = 4096;

impl AdversaryHost {
    /// Creates the host; inject [`timers::INIT`] to start it.
    pub fn new(
        ip: Ipv4Addr,
        mac: MacAddr,
        nic_cfg: NicConfig,
        uplink: tas_sim::AgentId,
        cfg: AdversaryConfig,
    ) -> Self {
        let nic = HostNic::new(mac, nic_cfg, uplink);
        AdversaryHost {
            cfg,
            ip,
            mac,
            nic,
            conns: Vec::new(),
            by_port: BTreeMap::new(),
            done: 0,
            sent: 0,
            established: 0,
            acks_sent: 0,
            ack_deltas: Vec::new(),
            adv_history: Vec::new(),
            win_cursor: 0,
        }
    }

    /// The next advertised window per the attack mode.
    fn next_window(&mut self) -> u16 {
        match &self.cfg.mode {
            AdvMode::AckDivision { .. } => u16::MAX,
            AdvMode::WindowStuff { pattern } => {
                if pattern.is_empty() {
                    return u16::MAX;
                }
                let w = pattern[self.win_cursor % pattern.len()];
                self.win_cursor += 1;
                if self.adv_history.len() < LOG_CAP {
                    self.adv_history.push(w);
                }
                w
            }
        }
    }

    fn seg(&self, h: TcpHeader, payload: Vec<u8>) -> Segment {
        Segment::tcp(
            self.mac,
            mac_for_ip(self.cfg.server),
            self.ip,
            self.cfg.server,
            h,
            payload,
            false,
        )
    }

    /// A header whose ACK field is explicit (division mode sends several
    /// per delivery, each a different sliver).
    fn header_with_ack(&mut self, idx: u32, ack: u32, flags: TcpFlags, now: SimTime) -> TcpHeader {
        let window = self.next_window();
        let Some(c) = self.conns.get(idx as usize) else {
            return TcpHeader::new(0, self.cfg.port, 0, 0, flags);
        };
        let mut h = TcpHeader::new(
            c.local_port,
            self.cfg.port,
            c.iss.wrapping_add(1).wrapping_add(c.sent_off as u32),
            ack,
            flags,
        );
        h.window = window;
        h.options.timestamp = Some((now.as_micros() as u32, c.ts_recent));
        h
    }

    fn cum_ack(&self, idx: u32) -> u32 {
        let Some(c) = self.conns.get(idx as usize) else {
            return 0;
        };
        c.irs.wrapping_add(1).wrapping_add(c.rcv_off as u32)
    }

    fn open_connection(&mut self, idx: u32, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let local_port = 2048 + (idx % 60_000) as u16;
        let iss = ctx.rng().next_u32();
        self.by_port.insert(local_port, self.conns.len() as u32);
        self.conns.push(AdvConn {
            state: AdvState::SynSent,
            local_port,
            iss,
            irs: 0,
            sent_off: 0,
            rcv_off: 0,
            awaiting: 0,
            ts_recent: 0,
            last_progress: now,
        });
        let mut h = TcpHeader::new(local_port, self.cfg.port, iss, 0, TcpFlags::SYN);
        h.options.mss = Some(1448);
        // No window scaling: the advertised patterns are raw 16-bit.
        h.options.timestamp = Some((now.as_micros() as u32, 0));
        h.window = u16::MAX;
        let seg = self.seg(h, Vec::new());
        self.nic.tx(now, seg, ctx);
    }

    fn fire_request(&mut self, idx: u32, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let payload = self.cfg.req_template.clone();
        let ack = self.cum_ack(idx);
        let h = self.header_with_ack(idx, ack, TcpFlags::ACK | TcpFlags::PSH, now);
        if let Some(c) = self.conns.get_mut(idx as usize) {
            c.sent_off += payload.len() as u64;
            c.awaiting = self.cfg.resp_size;
            c.last_progress = now;
        }
        self.sent += 1;
        let seg = self.seg(h, payload);
        self.nic.tx(now, seg, ctx);
    }

    fn send_ack(&mut self, idx: u32, ack: u32, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let h = self.header_with_ack(idx, ack, TcpFlags::ACK, now);
        self.acks_sent += 1;
        let seg = self.seg(h, Vec::new());
        self.nic.tx(now, seg, ctx);
    }

    fn on_packet(&mut self, seg: Segment, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let key: FlowKey = seg.flow_key();
        let Some(&idx) = self.by_port.get(&key.local_port) else {
            return;
        };
        let mut handshake_done = false;
        let mut in_order_span: Option<(u32, usize)> = None; // (base ack, len)
        let mut dup_ack = false;
        {
            let Some(c) = self.conns.get_mut(idx as usize) else {
                return;
            };
            if let Some((tsval, _)) = seg.tcp.options.timestamp {
                c.ts_recent = tsval;
            }
            match c.state {
                AdvState::SynSent => {
                    if seg.tcp.flags.contains(TcpFlags::SYN | TcpFlags::ACK)
                        && seg.tcp.ack == c.iss.wrapping_add(1)
                    {
                        c.irs = seg.tcp.seq;
                        c.state = AdvState::Established;
                        c.last_progress = now;
                        handshake_done = true;
                    }
                }
                AdvState::Established => {
                    if !seg.payload.is_empty() {
                        let expected = c.irs.wrapping_add(1).wrapping_add(c.rcv_off as u32);
                        if seg.tcp.seq == expected {
                            let len = seg.payload.len();
                            let base = expected;
                            c.rcv_off += len as u64;
                            c.last_progress = now;
                            let got = len.min(c.awaiting);
                            c.awaiting -= got;
                            in_order_span = Some((base, len));
                        } else {
                            dup_ack = true;
                        }
                    }
                }
            }
        }
        if handshake_done {
            self.established += 1;
            // Complete the handshake, then bait the first response.
            let ack = self.cum_ack(idx);
            self.send_ack(idx, ack, now, ctx);
            self.fire_request(idx, now, ctx);
            return;
        }
        if let Some((base, len)) = in_order_span {
            match self.cfg.mode.clone() {
                AdvMode::AckDivision { chunk } => {
                    // Acknowledge the span in sub-MSS slivers: each pure
                    // ACK advances by at most `chunk` bytes.
                    let step = chunk.max(1);
                    let mut covered = 0u32;
                    while (covered as usize) < len {
                        let adv = step.min(len as u32 - covered);
                        covered += adv;
                        if self.ack_deltas.len() < LOG_CAP {
                            self.ack_deltas.push(adv);
                        }
                        let ack = base.wrapping_add(covered);
                        self.send_ack(idx, ack, now, ctx);
                    }
                }
                AdvMode::WindowStuff { .. } => {
                    let ack = self.cum_ack(idx);
                    self.send_ack(idx, ack, now, ctx);
                }
            }
            let fire = self
                .conns
                .get(idx as usize)
                .map(|c| c.awaiting == 0)
                .unwrap_or(false);
            if fire {
                self.done += 1;
                self.fire_request(idx, now, ctx);
            }
        } else if dup_ack {
            let ack = self.cum_ack(idx);
            self.send_ack(idx, ack, now, ctx);
        }
    }

    fn watchdog(&mut self, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let stall = self.cfg.watchdog;
        let mut resend: Vec<u32> = Vec::new();
        let mut resyn: Vec<u32> = Vec::new();
        for (i, c) in self.conns.iter().enumerate() {
            match c.state {
                AdvState::Established if c.awaiting > 0 && now - c.last_progress > stall => {
                    resend.push(i as u32);
                }
                AdvState::SynSent if now - c.last_progress > stall => resyn.push(i as u32),
                _ => {}
            }
        }
        for idx in resend {
            let payload = self.cfg.req_template.clone();
            let ack = self.cum_ack(idx);
            let mut h = self.header_with_ack(idx, ack, TcpFlags::ACK | TcpFlags::PSH, now);
            // Rewind to the outstanding request's first byte.
            if let Some(c) = self.conns.get_mut(idx as usize) {
                c.last_progress = now;
                h.seq = c
                    .iss
                    .wrapping_add(1)
                    .wrapping_add((c.sent_off.saturating_sub(payload.len() as u64)) as u32);
            }
            let seg = self.seg(h, payload);
            self.nic.tx(now, seg, ctx);
        }
        for idx in resyn {
            let Some(c) = self.conns.get_mut(idx as usize) else {
                continue;
            };
            c.last_progress = now;
            let mut h = TcpHeader::new(c.local_port, self.cfg.port, c.iss, 0, TcpFlags::SYN);
            h.options.mss = Some(1448);
            h.options.timestamp = Some((now.as_micros() as u32, 0));
            h.window = u16::MAX;
            let seg = self.seg(h, Vec::new());
            self.nic.tx(now, seg, ctx);
        }
    }
}

impl Agent<NetMsg> for AdversaryHost {
    fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev {
            Event::Msg {
                msg: NetMsg::Packet(seg),
                ..
            } => {
                let now = ctx.now();
                self.on_packet(seg, now, ctx);
            }
            Event::Timer {
                kind: timers::INIT, ..
            } => {
                let now = ctx.now();
                for i in 0..self.cfg.conns {
                    self.open_connection(i, now, ctx);
                }
                ctx.timer(self.cfg.watchdog, timers::WATCHDOG, 0);
            }
            Event::Timer {
                kind: timers::WATCHDOG,
                ..
            } => {
                let now = ctx.now();
                self.watchdog(now, ctx);
                ctx.timer(self.cfg.watchdog, timers::WATCHDOG, 0);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_bait_is_well_formed() {
        let req = kv_get_request(5);
        assert_eq!(req.len(), crate::kv::REQ_HDR + crate::kv::VAL_SIZE);
        assert_eq!(req[0], crate::kv::OP_GET);
        assert_eq!(u32::from_be_bytes([req[1], req[2], req[3], req[4]]), 5);
        assert_eq!(kv_resp_size(), crate::kv::RESP_HDR + crate::kv::VAL_SIZE);
    }

    #[test]
    fn window_pattern_cycles_and_logs() {
        let cfg = AdversaryConfig::kv(
            Ipv4Addr::new(10, 0, 0, 1),
            7,
            1,
            AdvMode::WindowStuff {
                pattern: vec![16, 1, 512],
            },
        );
        let mut h = AdversaryHost::new(
            Ipv4Addr::new(10, 0, 0, 9),
            MacAddr::for_host(9),
            NicConfig::client_10g(1),
            0,
            cfg,
        );
        let got: Vec<u16> = (0..7).map(|_| h.next_window()).collect();
        assert_eq!(got, vec![16, 1, 512, 16, 1, 512, 16]);
        assert_eq!(h.adv_history, got);
    }
}
