//! Dynamic flow workload for the congestion-control experiments
//! (Fig. 11: single bottleneck, Fig. 12: FatTree).
//!
//! A [`FlowGen`] opens a new connection per flow (Poisson arrivals,
//! Pareto-ish sizes chosen by the harness), streams the flow's bytes, and
//! closes. The first 16 payload bytes carry the flow's start time and
//! size, so the [`FlowSink`] can compute the flow completion time the way
//! ns-3 scripts do (arrival of the last byte minus flow start).

use std::collections::HashMap;
use std::net::Ipv4Addr;
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_sim::{impl_as_any, Histogram, Rng, SimTime};

/// Flow header: start time (ps) and flow size (bytes).
pub const FLOW_HDR: usize = 16;

/// Sizes in packets for the short/long split of Fig. 12 (50 packets).
pub const SHORT_FLOW_PKTS: u64 = 50;

/// Generates flows toward a set of destinations.
pub struct FlowGen {
    /// Destination choices (ip, port).
    pub dests: Vec<(Ipv4Addr, u16)>,
    /// Mean inter-arrival time.
    pub mean_gap: SimTime,
    /// Flow size sampler parameters (bounded Pareto).
    pub size_min: f64,
    /// Maximum flow size.
    pub size_max: f64,
    /// Pareto shape.
    pub size_alpha: f64,
    /// Stop generating new flows after this time (0 = never).
    pub stop_at: SimTime,
    rng: Rng,
    active: HashMap<SockId, (u64, u64)>, // (size, sent).
    /// Flows started.
    pub started: u64,
    /// Flows whose bytes were fully accepted by the stack.
    pub finished_sending: u64,
    start_of: HashMap<SockId, SimTime>,
}

impl FlowGen {
    /// Creates a generator; `mean_size`/`alpha` define the Pareto sizes.
    pub fn new(dests: Vec<(Ipv4Addr, u16)>, mean_gap: SimTime, seed: u64) -> Self {
        FlowGen {
            dests,
            mean_gap,
            size_min: 2.0 * 1448.0,
            size_max: 500.0 * 1448.0,
            size_alpha: 1.2,
            stop_at: SimTime::ZERO,
            rng: Rng::new(seed),
            active: HashMap::new(),
            started: 0,
            finished_sending: 0,
            start_of: HashMap::new(),
        }
    }

    fn schedule_next(&mut self, api: &mut dyn StackApi) {
        let gap =
            tas_sim::dist::Exponential::new(self.mean_gap.as_ps() as f64).sample(&mut self.rng);
        api.set_app_timer(SimTime::from_ps(gap.max(1.0) as u64), 0);
    }

    fn start_flow(&mut self, api: &mut dyn StackApi) {
        let (ip, port) = *self.rng.choose(&self.dests);
        let size = tas_sim::dist::BoundedPareto::new(self.size_min, self.size_max, self.size_alpha)
            .sample(&mut self.rng)
            .round() as u64;
        let size = size.max(FLOW_HDR as u64);
        let sock = api.connect(ip, port);
        self.active.insert(sock, (size, 0));
        self.start_of.insert(sock, api.now());
        self.started += 1;
    }

    fn pump(&mut self, sock: SockId, api: &mut dyn StackApi) {
        let Some(&(size, sent)) = self.active.get(&sock) else {
            return;
        };
        let mut sent = sent;
        loop {
            let left = size - sent;
            if left == 0 {
                break;
            }
            let chunk = left.min(8192) as usize;
            let mut buf = vec![0x33u8; chunk];
            if sent == 0 {
                // Stamp the header into the first bytes.
                let start = self.start_of[&sock].as_ps();
                buf[..8].copy_from_slice(&start.to_be_bytes());
                buf[8..16].copy_from_slice(&size.to_be_bytes());
            }
            let n = api.send(sock, &buf) as u64;
            sent += n;
            if n < chunk as u64 {
                break;
            }
        }
        self.active.insert(sock, (size, sent));
        if sent == size {
            self.active.remove(&sock);
            self.finished_sending += 1;
            api.close(sock);
        }
    }
}

impl App for FlowGen {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        self.schedule_next(api);
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Timer { .. }
                if (self.stop_at == SimTime::ZERO || api.now() < self.stop_at) =>
            {
                self.start_flow(api);
                self.schedule_next(api);
            }
            AppEvent::Connected { sock } | AppEvent::Writable { sock } => self.pump(sock, api),
            AppEvent::Closed { sock } => {
                self.active.remove(&sock);
                self.start_of.remove(&sock);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

/// Receives flows and records completion times.
pub struct FlowSink {
    /// Listening port.
    pub port: u16,
    conns: HashMap<SockId, SinkConn>,
    /// FCTs (ns) of flows at most [`SHORT_FLOW_PKTS`] packets.
    pub fct_short: Histogram,
    /// FCTs (ns) of longer flows.
    pub fct_long: Histogram,
    /// All FCTs (ns).
    pub fct_all: Histogram,
    /// Completed flows.
    pub completed: u64,
    /// Measurement gate (flows *starting* before this are not recorded).
    pub measure_from: SimTime,
}

struct SinkConn {
    hdr: Vec<u8>,
    size: u64,
    start_ps: u64,
    got: u64,
}

impl FlowSink {
    /// Creates a sink.
    pub fn new(port: u16) -> Self {
        FlowSink {
            port,
            conns: HashMap::new(),
            fct_short: Histogram::new(),
            fct_long: Histogram::new(),
            fct_all: Histogram::new(),
            completed: 0,
            measure_from: SimTime::ZERO,
        }
    }
}

impl App for FlowSink {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(self.port);
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Accepted { sock, .. } => {
                self.conns.insert(
                    sock,
                    SinkConn {
                        hdr: Vec::new(),
                        size: 0,
                        start_ps: 0,
                        got: 0,
                    },
                );
            }
            AppEvent::Readable { sock } => {
                let data = api.recv(sock, usize::MAX);
                let now = api.now();
                let Some(c) = self.conns.get_mut(&sock) else {
                    return;
                };
                let mut data = &data[..];
                if c.hdr.len() < FLOW_HDR {
                    let need = FLOW_HDR - c.hdr.len();
                    let take = need.min(data.len());
                    c.hdr.extend_from_slice(&data[..take]);
                    c.got += take as u64;
                    data = &data[take..];
                    if c.hdr.len() == FLOW_HDR {
                        c.start_ps = u64::from_be_bytes(c.hdr[..8].try_into().expect("sized"));
                        c.size = u64::from_be_bytes(c.hdr[8..16].try_into().expect("sized"));
                    }
                }
                c.got += data.len() as u64;
                if c.size > 0 && c.got >= c.size {
                    let start = SimTime::from_ps(c.start_ps);
                    let fct = now.saturating_sub(start);
                    let size = c.size;
                    self.conns.remove(&sock);
                    self.completed += 1;
                    if start >= self.measure_from {
                        self.fct_all.record_time(fct);
                        if size <= SHORT_FLOW_PKTS * 1448 {
                            self.fct_short.record_time(fct);
                        } else {
                            self.fct_long.record_time(fct);
                        }
                    }
                }
            }
            AppEvent::Closed { sock } => {
                self.conns.remove(&sock);
                api.close(sock);
            }
            _ => {}
        }
    }

    impl_as_any!();
}
