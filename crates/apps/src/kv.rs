//! Memcached-like key-value store and memslap-like clients (§5.3).
//!
//! Binary protocol over TCP (fixed-size fields, no pipelining ambiguity):
//!
//! ```text
//! request:  [op: 1B (0=GET, 1=SET)] [key_id: 4B] [val_len: 2B] [value]
//! response: [status: 1B] [val_len: 2B] [value]
//! ```
//!
//! The paper's workload: 100,000 pairs, 32-byte keys / 64-byte values,
//! zipf(s = 0.9) popularity, 90% GET / 10% SET. The 32-byte key is
//! represented by its 4-byte id plus accounted (not transmitted) padding —
//! wire sizes match the paper's (request ≈ 39B + pad = 64B framing is the
//! paper's "small requests").

use crate::util::SendBuf;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_sim::dist::Zipf;
use tas_sim::{impl_as_any, Histogram, Rng, SimTime};

/// Request header bytes: op + key id + val_len + key padding to 32B.
pub const REQ_HDR: usize = 1 + 4 + 2 + 28;
/// Response header bytes: status + val_len.
pub const RESP_HDR: usize = 1 + 2;
/// Value size (paper: 64-byte values).
pub const VAL_SIZE: usize = 64;

/// GET opcode.
pub const OP_GET: u8 = 0;
/// SET opcode.
pub const OP_SET: u8 = 1;

fn req_len() -> usize {
    REQ_HDR + VAL_SIZE // SETs carry a value; GETs carry zero-padding so
                       // both directions have fixed sizes (keeps framing
                       // trivial and matches the paper's ~100B requests).
}

fn resp_len() -> usize {
    RESP_HDR + VAL_SIZE
}

/// The key-value store server.
pub struct KvServer {
    /// Listening port.
    pub port: u16,
    store: HashMap<u32, Vec<u8>>,
    /// Base application cycles per GET (hash + lookup + response build).
    pub get_cycles: u64,
    /// Base application cycles per SET.
    pub set_cycles: u64,
    /// Extra cycles per operation per *additional* app core, modeling the
    /// lock serializing updates of a contended key (Table 7's
    /// non-scalable workload); 0 for the scalable workload.
    pub lock_contention_cycles: u64,
    /// App cores serving requests (for the contention charge).
    pub app_cores: u32,
    /// GET operations served.
    pub gets: u64,
    /// SET operations served.
    pub sets: u64,
    partial: HashMap<SockId, Vec<u8>>,
    out: SendBuf,
}

impl KvServer {
    /// Creates a server with the paper's cost calibration (~0.68 kc of
    /// application work per request).
    pub fn new(port: u16) -> Self {
        KvServer {
            port,
            store: HashMap::new(),
            get_cycles: 650,
            set_cycles: 900,
            lock_contention_cycles: 0,
            app_cores: 1,
            gets: 0,
            sets: 0,
            partial: HashMap::new(),
            out: SendBuf::default(),
        }
    }

    /// Configures the Table 7 non-scalable variant: every operation takes
    /// the same lock.
    pub fn non_scalable(mut self, app_cores: u32, contention_cycles: u64) -> Self {
        self.app_cores = app_cores;
        self.lock_contention_cycles = contention_cycles;
        self
    }

    fn serve(&mut self, sock: SockId, api: &mut dyn StackApi) {
        let data = api.recv(sock, usize::MAX);
        let buf = self.partial.entry(sock).or_default();
        buf.extend_from_slice(&data);
        let rl = req_len();
        let mut responses: Vec<u8> = Vec::new();
        while buf.len() >= rl {
            let req: Vec<u8> = buf.drain(..rl).collect();
            let op = req[0];
            let key = u32::from_be_bytes([req[1], req[2], req[3], req[4]]);
            let mut cost = if op == OP_SET {
                self.set_cycles
            } else {
                self.get_cycles
            };
            if self.lock_contention_cycles > 0 && self.app_cores > 1 {
                cost += self.lock_contention_cycles * (self.app_cores as u64 - 1);
            }
            api.charge_app_cycles(cost);
            let mut resp = vec![0u8; resp_len()];
            match op {
                OP_SET => {
                    self.sets += 1;
                    self.store.insert(key, req[REQ_HDR..].to_vec());
                    resp[0] = 0;
                }
                _ => {
                    self.gets += 1;
                    match self.store.get(&key) {
                        Some(v) => {
                            resp[0] = 0;
                            let n = v.len().min(VAL_SIZE);
                            resp[RESP_HDR..RESP_HDR + n].copy_from_slice(&v[..n]);
                        }
                        None => resp[0] = 1, // Miss.
                    }
                }
            }
            resp[1..3].copy_from_slice(&(VAL_SIZE as u16).to_be_bytes());
            responses.extend_from_slice(&resp);
        }
        if !responses.is_empty() {
            self.out.send(api, sock, &responses);
        }
    }
}

impl App for KvServer {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(self.port);
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Readable { sock } => self.serve(sock, api),
            AppEvent::Writable { sock } => {
                self.out.on_writable(api, sock);
            }
            AppEvent::Closed { sock } => {
                self.partial.remove(&sock);
                self.out.clear(sock);
                api.close(sock);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

/// Load pattern of the [`KvClient`].
#[derive(Clone, Copy, Debug)]
pub enum KvLoad {
    /// Closed loop: one outstanding request per connection, immediately
    /// replaced (throughput experiments).
    Closed,
    /// Open loop at a fixed aggregate rate in requests/second spread over
    /// the connections (latency experiments at 15% utilization).
    OpenRate {
        /// Aggregate request rate.
        per_sec: u64,
    },
    /// Issue nothing (a stopped phase in the scenario suite). Switching
    /// to `Idle` lets the open-loop timer chain lapse; the client keeps
    /// draining responses already in flight.
    Idle,
}

struct KvConn {
    sock: SockId,
    pending: Vec<u8>,
    sent_at: Vec<SimTime>,
    connected: bool,
    msgs_on_conn: u32,
}

/// memslap-like workload client.
pub struct KvClient {
    server: Ipv4Addr,
    port: u16,
    n_conns: u32,
    keys: usize,
    zipf: Zipf,
    rng: Rng,
    load: KvLoad,
    /// Fraction of SETs (paper: 0.1).
    pub set_fraction: f64,
    conns: Vec<KvConn>,
    sock_index: HashMap<SockId, usize>,
    /// Completed requests.
    pub done: u64,
    /// Issued requests.
    pub sent: u64,
    /// Latency histogram in nanoseconds.
    pub latency: Histogram,
    /// Warmup gate.
    pub measure_from: SimTime,
    /// Diagnostic: completions slower than this are logged (ns).
    pub slow_log_over_ns: u64,
    /// Diagnostic log of (completion time, latency ns, sock).
    pub slow_log: Vec<(SimTime, u64, SockId)>,
    /// Connections fully torn down (churn mode).
    pub conns_completed: u64,
    /// Requests per connection before teardown + re-establish (0 =
    /// persistent connections).
    msgs_per_conn: u32,
    next_conn_rr: usize,
    preloaded: bool,
    out: SendBuf,
}

impl KvClient {
    /// Creates a client: `conns` connections, zipf(0.9) over `keys` keys.
    pub fn new(
        server: Ipv4Addr,
        port: u16,
        conns: u32,
        keys: usize,
        load: KvLoad,
        seed: u64,
    ) -> Self {
        KvClient {
            server,
            port,
            n_conns: conns,
            keys,
            zipf: Zipf::new(keys, 0.9),
            rng: Rng::new(seed),
            load,
            set_fraction: 0.1,
            conns: Vec::new(),
            sock_index: HashMap::new(),
            done: 0,
            sent: 0,
            latency: Histogram::new(),
            measure_from: SimTime::ZERO,
            slow_log_over_ns: u64::MAX,
            slow_log: Vec::new(),
            conns_completed: 0,
            msgs_per_conn: 0,
            next_conn_rr: 0,
            preloaded: false,
            out: SendBuf::default(),
        }
    }

    /// Uses a single hot key (Table 7's contended workload).
    pub fn single_key(mut self) -> Self {
        self.zipf = Zipf::new(1, 0.9);
        self.keys = 1;
        self
    }

    /// Short-lived connections: tear down and re-establish each
    /// connection after `msgs_per_conn` completed requests (the scenario
    /// suite's connection-churn storm; stresses slow-path handshakes and
    /// flow-slot recycling the way Fig. 5 does for echo RPCs).
    pub fn short_lived(mut self, msgs_per_conn: u32) -> Self {
        self.msgs_per_conn = msgs_per_conn;
        self
    }

    /// Replaces the load pattern mid-run (the flash-crowd phase change).
    /// Takes effect at the next open-loop arrival; switching from
    /// [`KvLoad::Idle`] to an active pattern does not restart a lapsed
    /// timer chain, so only use that transition before start-up.
    pub fn set_load(&mut self, load: KvLoad) {
        self.load = load;
    }

    fn build_request(&mut self) -> Vec<u8> {
        let key = self.zipf.sample(&mut self.rng) as u32;
        let op = if self.rng.chance(self.set_fraction) {
            OP_SET
        } else {
            OP_GET
        };
        let mut req = vec![0u8; req_len()];
        req[0] = op;
        req[1..5].copy_from_slice(&key.to_be_bytes());
        req[5..7].copy_from_slice(&(VAL_SIZE as u16).to_be_bytes());
        if op == OP_SET {
            for (i, b) in req[REQ_HDR..].iter_mut().enumerate() {
                *b = (key as usize + i) as u8;
            }
        }
        req
    }

    fn fire_on(&mut self, idx: usize, api: &mut dyn StackApi) {
        if !self.conns[idx].connected {
            return;
        }
        let req = self.build_request();
        let now = api.now();
        let sock = self.conns[idx].sock;
        if self.out.pending(sock) > 4 * req.len() {
            return; // Backed off: the socket is badly backlogged.
        }
        self.out.send(api, sock, &req);
        self.conns[idx].sent_at.push(now);
        self.sent += 1;
    }

    fn schedule_next_open(&mut self, api: &mut dyn StackApi) {
        if let KvLoad::OpenRate { per_sec } = self.load {
            // Exponential inter-arrival around the configured rate.
            let mean_ns = 1e9 / per_sec as f64;
            let gap = tas_sim::dist::Exponential::new(mean_ns).sample(&mut self.rng);
            api.set_app_timer(SimTime::from_ns(gap.max(1.0) as u64), 1);
        }
    }
}

impl App for KvClient {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.n_conns {
            let sock = api.connect(self.server, self.port);
            let idx = self.conns.len();
            self.conns.push(KvConn {
                sock,
                pending: Vec::new(),
                sent_at: Vec::new(),
                connected: false,
                msgs_on_conn: 0,
            });
            self.sock_index.insert(sock, idx);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Connected { sock } => {
                let Some(&idx) = self.sock_index.get(&sock) else {
                    return;
                };
                self.conns[idx].connected = true;
                if !self.preloaded {
                    self.preloaded = true;
                    // Preload a few hot keys so early GETs hit.
                    for k in 0..self.keys.min(64) as u32 {
                        let mut req = vec![0u8; req_len()];
                        req[0] = OP_SET;
                        req[1..5].copy_from_slice(&k.to_be_bytes());
                        req[5..7].copy_from_slice(&(VAL_SIZE as u16).to_be_bytes());
                        self.out.send(api, sock, &req);
                        self.conns[idx].sent_at.push(api.now());
                        self.sent += 1;
                    }
                    if let KvLoad::OpenRate { .. } = self.load {
                        self.schedule_next_open(api);
                    }
                    return;
                }
                match self.load {
                    KvLoad::Closed => self.fire_on(idx, api),
                    KvLoad::OpenRate { .. } | KvLoad::Idle => {}
                }
            }
            AppEvent::Writable { sock } => {
                self.out.on_writable(api, sock);
            }
            AppEvent::Timer { .. } => {
                // Open-loop arrival: pick the next connection round-robin.
                if !self.conns.is_empty() {
                    let idx = self.next_conn_rr % self.conns.len();
                    self.next_conn_rr += 1;
                    self.fire_on(idx, api);
                }
                self.schedule_next_open(api);
            }
            AppEvent::Readable { sock } => {
                let Some(&idx) = self.sock_index.get(&sock) else {
                    return;
                };
                let data = api.recv(sock, usize::MAX);
                let now = api.now();
                let rl = resp_len();
                self.conns[idx].pending.extend_from_slice(&data);
                while self.conns[idx].pending.len() >= rl {
                    self.conns[idx].pending.drain(..rl);
                    self.done += 1;
                    let c = &mut self.conns[idx];
                    c.msgs_on_conn += 1;
                    if !c.sent_at.is_empty() {
                        let t0 = c.sent_at.remove(0);
                        if now >= self.measure_from {
                            self.latency.record_time(now - t0);
                            let ns = (now - t0).as_nanos();
                            if ns > self.slow_log_over_ns && self.slow_log.len() < 64 {
                                self.slow_log.push((now, ns, sock));
                            }
                        }
                    }
                    if self.msgs_per_conn > 0 && self.conns[idx].msgs_on_conn >= self.msgs_per_conn
                    {
                        // Churn: tear the connection down; Closed re-opens.
                        let c = &mut self.conns[idx];
                        c.connected = false;
                        c.msgs_on_conn = 0;
                        c.pending.clear();
                        c.sent_at.clear();
                        api.close(sock);
                        break;
                    }
                    if matches!(self.load, KvLoad::Closed) {
                        self.fire_on(idx, api);
                    }
                }
            }
            AppEvent::Closed { sock } => {
                let Some(&idx) = self.sock_index.get(&sock) else {
                    return;
                };
                self.sock_index.remove(&sock);
                self.conns_completed += 1;
                if self.msgs_per_conn > 0 {
                    // Re-establish (the churn storm's steady connection
                    // arrival rate).
                    let new_sock = api.connect(self.server, self.port);
                    let c = &mut self.conns[idx];
                    c.sock = new_sock;
                    c.pending.clear();
                    c.sent_at.clear();
                    c.connected = false;
                    self.sock_index.insert(new_sock, idx);
                }
            }
            _ => {}
        }
    }

    impl_as_any!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sizes_are_paper_scale() {
        // ~100-byte requests (32B key + 64B value + header).
        assert_eq!(req_len(), 99);
        assert_eq!(resp_len(), 67);
    }

    #[test]
    fn request_encoding_round_trips() {
        let mut c = KvClient::new(Ipv4Addr::new(10, 0, 0, 1), 11211, 1, 100, KvLoad::Closed, 7);
        let req = c.build_request();
        assert_eq!(req.len(), req_len());
        assert!(req[0] == OP_GET || req[0] == OP_SET);
        let key = u32::from_be_bytes([req[1], req[2], req[3], req[4]]);
        assert!((key as usize) < 100);
    }

    #[test]
    fn zipf_prefers_low_keys() {
        let mut c = KvClient::new(
            Ipv4Addr::new(10, 0, 0, 1),
            11211,
            1,
            1000,
            KvLoad::Closed,
            7,
        );
        let mut low = 0;
        for _ in 0..1000 {
            let req = c.build_request();
            let key = u32::from_be_bytes([req[1], req[2], req[3], req[4]]);
            if key < 100 {
                low += 1;
            }
        }
        assert!(
            low > 300,
            "zipf(0.9) should concentrate: {low}/1000 in top 10%"
        );
    }

    #[test]
    fn contention_cost_scales_with_cores() {
        let s = KvServer::new(1).non_scalable(4, 500);
        assert_eq!(s.lock_contention_cycles, 500);
        assert_eq!(s.app_cores, 4);
    }
}
