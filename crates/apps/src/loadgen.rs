//! Lightweight raw-TCP RPC load generator.
//!
//! The paper's scalability experiments drive the server with banks of
//! client machines whose stacks are *not* under test (e.g. Fig. 4's 96K
//! connections, Fig. 8's 32K). Simulating a full per-connection TCP engine
//! on the client side would cost far more memory than the server under
//! test; this host instead speaks minimal-but-correct TCP directly
//! (handshake with options, one outstanding request per connection,
//! per-packet ACKs with advertised windows, stall-based request
//! retransmission). The client consumes no modeled CPU — exactly like the
//! paper's assumption that clients are never the bottleneck.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use tas_netsim::{HostNic, NetMsg, NicConfig};
use tas_proto::tcp::seq;
use tas_proto::{FlowKey, MacAddr, Segment, TcpFlags, TcpHeader};
use tas_sim::{impl_as_any, Agent, Ctx, Event, Histogram, SimTime};

/// Timer kinds.
pub mod timers {
    /// Start timer: begin staggered connection setup.
    pub const INIT: u32 = 0;
    /// Open the next batch of connections; data = next index.
    pub const CONNECT: u32 = 1;
    /// Watchdog sweep for stalled requests.
    pub const WATCHDOG: u32 = 2;
    /// Per-connection think-time expiry; data = connection index.
    pub const FIRE: u32 = 3;
}

/// Load generator configuration.
#[derive(Clone, Debug)]
pub struct LoadGenConfig {
    /// Server address.
    pub server: Ipv4Addr,
    /// Server port.
    pub port: u16,
    /// Number of connections.
    pub conns: u32,
    /// Request payload bytes.
    pub req_size: usize,
    /// Expected response payload bytes.
    pub resp_size: usize,
    /// Connections opened per millisecond during ramp-up.
    pub connects_per_ms: u32,
    /// Watchdog interval for stalled-request retransmission.
    pub watchdog: SimTime,
    /// Advertised receive window (bytes).
    pub adv_window: u32,
    /// Request payload template; when `None`, requests are 0x42 filler.
    /// When set, its length overrides `req_size`.
    pub req_template: Option<Vec<u8>>,
    /// Stop issuing new requests after this instant (0 = never) — used by
    /// the proportionality experiment to step load down.
    pub stop_at: SimTime,
    /// Think time between a response and the next request on a
    /// connection (0 = immediate closed loop).
    pub think: SimTime,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        LoadGenConfig {
            server: Ipv4Addr::UNSPECIFIED,
            port: 7,
            conns: 1,
            req_size: 64,
            resp_size: 64,
            connects_per_ms: 400,
            watchdog: SimTime::from_ms(50),
            adv_window: 256 * 1024,
            req_template: None,
            stop_at: SimTime::ZERO,
            think: SimTime::ZERO,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LgState {
    SynSent,
    Established,
}

struct LgConn {
    state: LgState,
    local_port: u16,
    iss: u32,
    irs: u32,
    /// Bytes of request stream sent (stream offset past SYN).
    sent_off: u64,
    /// Bytes of request stream acked by the server.
    acked_off: u64,
    /// Bytes of response stream received in order.
    rcv_off: u64,
    /// Response bytes still expected for the current request.
    awaiting: usize,
    /// When the current request went out.
    sent_at: SimTime,
    ts_recent: u32,
    last_progress: SimTime,
}

/// The load-generator host agent.
pub struct LoadGenHost {
    cfg: LoadGenConfig,
    ip: Ipv4Addr,
    mac: MacAddr,
    nic: HostNic,
    conns: Vec<LgConn>,
    by_port: HashMap<u16, u32>,
    /// Completed request/response exchanges.
    pub done: u64,
    /// Requests sent (first transmissions).
    pub sent: u64,
    /// Request retransmissions by the watchdog.
    pub rexmits: u64,
    /// Established connections.
    pub established: u64,
    /// RPC latency histogram (ns).
    pub latency: Histogram,
    /// Warmup gate for latency recording.
    pub measure_from: SimTime,
    /// Resettable latency accumulator for time-series sampling (Fig. 15):
    /// harnesses read the mean and call [`LoadGenHost::reset_window`].
    pub window_lat_us: tas_sim::MeanVar,
    wscale: u8,
}

const LG_WSCALE: u8 = 7;

impl LoadGenHost {
    /// Creates a load generator; inject [`timers::INIT`] to start it.
    pub fn new(
        ip: Ipv4Addr,
        mac: MacAddr,
        nic_cfg: NicConfig,
        uplink: tas_sim::AgentId,
        cfg: LoadGenConfig,
    ) -> Self {
        let nic = HostNic::new(mac, nic_cfg, uplink);
        LoadGenHost {
            cfg,
            ip,
            mac,
            nic,
            conns: Vec::new(),
            by_port: HashMap::new(),
            done: 0,
            sent: 0,
            rexmits: 0,
            established: 0,
            latency: Histogram::new(),
            measure_from: SimTime::ZERO,
            window_lat_us: tas_sim::MeanVar::new(),
            wscale: LG_WSCALE,
        }
    }

    /// Resets the windowed latency accumulator (time-series sampling).
    pub fn reset_window(&mut self) {
        self.window_lat_us = tas_sim::MeanVar::new();
    }

    /// Sets the stop time for new requests (0 = never).
    pub fn set_stop_at(&mut self, t: SimTime) {
        self.cfg.stop_at = t;
    }

    fn header(&self, c: &LgConn, flags: TcpFlags, now: SimTime) -> TcpHeader {
        let mut h = TcpHeader::new(
            c.local_port,
            self.cfg.port,
            c.iss.wrapping_add(1).wrapping_add(c.sent_off as u32),
            c.irs.wrapping_add(1).wrapping_add(c.rcv_off as u32),
            flags,
        );
        h.window = ((self.cfg.adv_window >> self.wscale) as u16).max(1);
        h.options.timestamp = Some((now.as_micros() as u32, c.ts_recent));
        h
    }

    fn tx(&mut self, seg: Segment, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        self.nic.tx(now, seg, ctx);
    }

    fn seg(&self, h: TcpHeader, payload: Vec<u8>) -> Segment {
        Segment::tcp(
            self.mac,
            mac_for_ip(self.cfg.server),
            self.ip,
            self.cfg.server,
            h,
            payload,
            false,
        )
    }

    fn open_connection(&mut self, idx: u32, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let local_port = 1024 + (idx % 64_000) as u16;
        let iss = ctx.rng().next_u32();
        let c = LgConn {
            state: LgState::SynSent,
            local_port,
            iss,
            irs: 0,
            sent_off: 0,
            acked_off: 0,
            rcv_off: 0,
            awaiting: 0,
            sent_at: now,
            ts_recent: 0,
            last_progress: now,
        };
        let mut h = TcpHeader::new(local_port, self.cfg.port, iss, 0, TcpFlags::SYN);
        h.options.mss = Some(1448);
        h.options.wscale = Some(self.wscale);
        h.options.timestamp = Some((now.as_micros() as u32, 0));
        h.window = u16::MAX;
        let seg = self.seg(h, Vec::new());
        self.by_port.insert(local_port, self.conns.len() as u32);
        self.conns.push(c);
        self.tx(seg, now, ctx);
    }

    fn request_payload(&self) -> Vec<u8> {
        match &self.cfg.req_template {
            Some(t) => t.clone(),
            None => vec![0x42u8; self.cfg.req_size],
        }
    }

    fn fire_request(&mut self, idx: u32, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let payload = self.request_payload();
        let h = self.header_for(idx, TcpFlags::ACK | TcpFlags::PSH, now);
        {
            let c = &mut self.conns[idx as usize];
            c.sent_off += payload.len() as u64;
            c.awaiting = self.cfg.resp_size;
            c.sent_at = now;
            c.last_progress = now;
        }
        self.sent += 1;
        let seg = self.seg(h, payload);
        self.tx(seg, now, ctx);
    }

    fn header_for(&self, idx: u32, flags: TcpFlags, now: SimTime) -> TcpHeader {
        self.header(&self.conns[idx as usize], flags, now)
    }

    fn on_packet(&mut self, seg: Segment, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let key: FlowKey = seg.flow_key();
        let Some(&idx) = self.by_port.get(&key.local_port) else {
            return;
        };
        // Collect response actions to avoid aliasing.
        let mut send_ack = false;
        let mut fire_next = false;
        let mut completed_latency: Option<SimTime> = None;
        {
            let c = &mut self.conns[idx as usize];
            if let Some((tsval, _)) = seg.tcp.options.timestamp {
                c.ts_recent = tsval;
            }
            match c.state {
                LgState::SynSent => {
                    if seg.tcp.flags.contains(TcpFlags::SYN | TcpFlags::ACK)
                        && seg.tcp.ack == c.iss.wrapping_add(1)
                    {
                        c.irs = seg.tcp.seq;
                        c.state = LgState::Established;
                        self.established += 1;
                        send_ack = true;
                        fire_next = true;
                    }
                }
                LgState::Established => {
                    // ACK processing for our requests.
                    if seg.tcp.flags.contains(TcpFlags::ACK) {
                        let una = c.iss.wrapping_add(1).wrapping_add(c.acked_off as u32);
                        let nxt = c.iss.wrapping_add(1).wrapping_add(c.sent_off as u32);
                        if seq::gt(seg.tcp.ack, una) && seq::le(seg.tcp.ack, nxt) {
                            c.acked_off += seq::sub(seg.tcp.ack, una) as u64;
                        }
                    }
                    // Response data.
                    if !seg.payload.is_empty() {
                        let expected = c.irs.wrapping_add(1).wrapping_add(c.rcv_off as u32);
                        if seg.tcp.seq == expected {
                            c.rcv_off += seg.payload.len() as u64;
                            c.last_progress = now;
                            let got = seg.payload.len().min(c.awaiting);
                            c.awaiting -= got;
                            if c.awaiting == 0 && got > 0 {
                                completed_latency = Some(c.sent_at);
                                fire_next = true;
                            } else {
                                send_ack = true;
                            }
                        } else {
                            // Old or out-of-order: plain dup-ACK.
                            send_ack = true;
                        }
                    }
                }
            }
        }
        if let Some(t0) = completed_latency {
            self.done += 1;
            if now >= self.measure_from {
                self.latency.record_time(now - t0);
                self.window_lat_us.add((now - t0).as_micros_f64());
            }
        }
        if fire_next
            && self.conns[idx as usize].state == LgState::Established
            && (self.cfg.stop_at == SimTime::ZERO || now < self.cfg.stop_at)
        {
            if self.cfg.think > SimTime::ZERO && completed_latency.is_some() {
                // Think, then fire; meanwhile acknowledge the response.
                ctx.timer(self.cfg.think, timers::FIRE, idx as u64);
                let h = self.header_for(idx, TcpFlags::ACK, now);
                let seg = self.seg(h, Vec::new());
                self.tx(seg, now, ctx);
            } else {
                // The next request's data packet carries the cumulative ACK.
                self.fire_request(idx, now, ctx);
            }
        } else if send_ack {
            let h = self.header_for(idx, TcpFlags::ACK, now);
            let seg = self.seg(h, Vec::new());
            self.tx(seg, now, ctx);
        }
    }

    fn watchdog(&mut self, now: SimTime, ctx: &mut Ctx<'_, NetMsg>) {
        let stall = self.cfg.watchdog;
        let mut to_resend: Vec<u32> = Vec::new();
        let mut to_reconnect: Vec<u32> = Vec::new();
        for (i, c) in self.conns.iter().enumerate() {
            match c.state {
                LgState::Established if c.awaiting > 0 && now - c.last_progress > stall => {
                    to_resend.push(i as u32);
                }
                LgState::SynSent if now - c.last_progress > stall => {
                    to_reconnect.push(i as u32);
                }
                _ => {}
            }
        }
        for idx in to_resend {
            // Retransmit the outstanding request from its first byte.
            self.rexmits += 1;
            let payload = self.request_payload();
            let (h, seg_payload) = {
                let c = &mut self.conns[idx as usize];
                c.last_progress = now;
                let mut h = TcpHeader::new(
                    c.local_port,
                    self.cfg.port,
                    c.iss
                        .wrapping_add(1)
                        .wrapping_add((c.sent_off - payload.len() as u64) as u32),
                    c.irs.wrapping_add(1).wrapping_add(c.rcv_off as u32),
                    TcpFlags::ACK | TcpFlags::PSH,
                );
                h.window = ((self.cfg.adv_window >> self.wscale) as u16).max(1);
                h.options.timestamp = Some((now.as_micros() as u32, c.ts_recent));
                (h, payload)
            };
            let seg = self.seg(h, seg_payload);
            self.tx(seg, now, ctx);
        }
        for idx in to_reconnect {
            // Re-send the SYN.
            let (h, _) = {
                let c = &mut self.conns[idx as usize];
                c.last_progress = now;
                let mut h = TcpHeader::new(c.local_port, self.cfg.port, c.iss, 0, TcpFlags::SYN);
                h.options.mss = Some(1448);
                h.options.wscale = Some(self.wscale);
                h.options.timestamp = Some((now.as_micros() as u32, 0));
                h.window = u16::MAX;
                (h, ())
            };
            let seg = self.seg(h, Vec::new());
            self.tx(seg, now, ctx);
        }
    }
}

/// Deterministic MAC for a simulated host IP.
pub fn mac_for_ip(ip: Ipv4Addr) -> MacAddr {
    let o = ip.octets();
    MacAddr::for_host(u32::from_be_bytes([0, o[1], o[2], o[3]]))
}

impl Agent<NetMsg> for LoadGenHost {
    fn on_event(&mut self, ev: Event<NetMsg>, ctx: &mut Ctx<'_, NetMsg>) {
        match ev {
            Event::Msg {
                msg: NetMsg::Packet(seg),
                ..
            } => {
                let now = ctx.now();
                // No CPU model: the loadgen host processes instantly.
                self.on_packet(seg, now, ctx);
            }
            Event::Timer {
                kind: timers::INIT, ..
            } => {
                ctx.timer(SimTime::ZERO, timers::CONNECT, 0);
                ctx.timer(self.cfg.watchdog, timers::WATCHDOG, 0);
            }
            Event::Timer {
                kind: timers::CONNECT,
                data,
            } => {
                let now = ctx.now();
                let start = data as u32;
                let end = (start + self.cfg.connects_per_ms).min(self.cfg.conns);
                for i in start..end {
                    self.open_connection(i, now, ctx);
                }
                if end < self.cfg.conns {
                    ctx.timer(SimTime::from_ms(1), timers::CONNECT, end as u64);
                }
            }
            Event::Timer {
                kind: timers::WATCHDOG,
                ..
            } => {
                let now = ctx.now();
                self.watchdog(now, ctx);
                ctx.timer(self.cfg.watchdog, timers::WATCHDOG, 0);
            }
            Event::Timer {
                kind: timers::FIRE,
                data,
            } => {
                let now = ctx.now();
                let idx = data as u32;
                if (idx as usize) < self.conns.len()
                    && self.conns[idx as usize].state == LgState::Established
                    && self.conns[idx as usize].awaiting == 0
                    && (self.cfg.stop_at == SimTime::ZERO || now < self.cfg.stop_at)
                {
                    self.fire_request(idx, now, ctx);
                }
            }
            _ => {}
        }
    }

    impl_as_any!();
}
