//! Shared application plumbing.

use std::collections::HashMap;
use tas_netsim::app::{SockId, StackApi};

/// Per-socket send buffering for message-framed applications.
///
/// `StackApi::send` may accept only part of a write when the per-flow
/// transmit buffer is full; for framed protocols a half-sent message would
/// permanently corrupt the peer's framing. [`SendBuf`] carries the
/// remainder and flushes it on [`SendBuf::on_writable`], so callers can
/// treat every logical message as fully accepted.
///
/// # Examples
///
/// ```no_run
/// # use tas_apps::util::SendBuf;
/// # fn f(api: &mut dyn tas_netsim::app::StackApi, sock: u32) {
/// let mut out = SendBuf::default();
/// out.send(api, sock, b"complete message");
/// // Later, on AppEvent::Writable { sock }:
/// out.on_writable(api, sock);
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SendBuf {
    carry: HashMap<SockId, Vec<u8>>,
}

impl SendBuf {
    /// Sends `data`, carrying whatever the stack does not accept. Returns
    /// the bytes that reached the stack *now* (the rest is carried).
    pub fn send(&mut self, api: &mut dyn StackApi, sock: SockId, data: &[u8]) -> usize {
        if let Some(c) = self.carry.get_mut(&sock) {
            if !c.is_empty() {
                // Never reorder: append behind the existing carry.
                c.extend_from_slice(data);
                return self.flush(api, sock);
            }
        }
        let n = api.send(sock, data);
        if n < data.len() {
            self.carry
                .entry(sock)
                .or_default()
                .extend_from_slice(&data[n..]);
        }
        n
    }

    /// Flushes carried bytes; call on `AppEvent::Writable`.
    pub fn on_writable(&mut self, api: &mut dyn StackApi, sock: SockId) -> usize {
        self.flush(api, sock)
    }

    fn flush(&mut self, api: &mut dyn StackApi, sock: SockId) -> usize {
        let Some(c) = self.carry.get_mut(&sock) else {
            return 0;
        };
        if c.is_empty() {
            return 0;
        }
        let n = api.send(sock, c);
        c.drain(..n);
        n
    }

    /// Bytes currently carried for a socket.
    pub fn pending(&self, sock: SockId) -> usize {
        self.carry.get(&sock).map(|c| c.len()).unwrap_or(0)
    }

    /// Drops a closed socket's state.
    pub fn clear(&mut self, sock: SockId) {
        self.carry.remove(&sock);
    }
}
