//! RPC echo server and clients (Figures 4–6).

use crate::util::SendBuf;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use tas_netsim::app::{App, AppEvent, SockId, StackApi};
use tas_sim::{impl_as_any, Histogram, SimTime};

/// What the echo server does with a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerMode {
    /// Echo every received byte back (the RPC echo benchmark).
    Echo,
    /// Consume silently (the "server only receives" half of Fig. 6).
    Consume,
    /// Stream fixed-size messages to every accepted connection as fast as
    /// the socket accepts (the "server only sends" half of Fig. 6).
    Stream {
        /// Message size in bytes.
        size: usize,
    },
}

/// The echo/stream server application.
pub struct EchoServer {
    /// Listening port.
    pub port: u16,
    /// Behaviour.
    pub mode: ServerMode,
    /// Application cycles charged per message (Fig. 6 uses 250 and 1000).
    pub app_cycles: u64,
    /// Message size for accounting request boundaries.
    pub msg_size: usize,
    /// Total messages handled.
    pub messages: u64,
    /// Total payload bytes received.
    pub bytes_in: u64,
    /// Total payload bytes sent.
    pub bytes_out: u64,
    /// Accepted connections.
    pub accepted: u64,
    /// Bytes buffered per socket until a full message is present.
    partial: HashMap<SockId, usize>,
    out: SendBuf,
}

impl EchoServer {
    /// Creates an echo server for `msg_size`-byte messages.
    pub fn new(port: u16, msg_size: usize, mode: ServerMode, app_cycles: u64) -> Self {
        EchoServer {
            port,
            mode,
            app_cycles,
            msg_size,
            messages: 0,
            bytes_in: 0,
            bytes_out: 0,
            accepted: 0,
            partial: HashMap::new(),
            out: SendBuf::default(),
        }
    }

    fn pump_stream(&mut self, sock: SockId, api: &mut dyn StackApi) {
        let ServerMode::Stream { size } = self.mode else {
            return;
        };
        // Fill the socket until it stops accepting full messages.
        loop {
            api.charge_app_cycles(self.app_cycles);
            let msg = vec![0x5a; size];
            let n = api.send(sock, &msg);
            self.bytes_out += n as u64;
            if n < size {
                break;
            }
            self.messages += 1;
        }
    }
}

impl App for EchoServer {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        api.listen(self.port);
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Accepted { sock, .. } => {
                self.accepted += 1;
                if matches!(self.mode, ServerMode::Stream { .. }) {
                    self.pump_stream(sock, api);
                }
            }
            AppEvent::Writable { sock } => {
                if matches!(self.mode, ServerMode::Stream { .. }) {
                    self.pump_stream(sock, api);
                } else {
                    self.bytes_out += self.out.on_writable(api, sock) as u64;
                }
            }
            AppEvent::Readable { sock } => {
                let data = api.recv(sock, usize::MAX);
                self.bytes_in += data.len() as u64;
                let have = self.partial.entry(sock).or_insert(0);
                *have += data.len();
                let full = *have / self.msg_size;
                *have %= self.msg_size;
                for _ in 0..full {
                    self.messages += 1;
                    api.charge_app_cycles(self.app_cycles);
                }
                if self.mode == ServerMode::Echo && !data.is_empty() {
                    let n = self.out.send(api, sock, &data);
                    self.bytes_out += n as u64;
                }
            }
            AppEvent::Closed { sock } => {
                self.partial.remove(&sock);
                self.out.clear(sock);
                api.close(sock);
            }
            _ => {}
        }
    }

    impl_as_any!();
}

/// Connection lifetime policy for [`RpcClient`].
#[derive(Clone, Copy, Debug)]
pub enum Lifetime {
    /// Keep connections open for the whole run.
    Persistent,
    /// Close and re-establish each connection after `msgs_per_conn`
    /// request/response exchanges (Fig. 5).
    ShortLived {
        /// RPCs per connection before teardown.
        msgs_per_conn: u32,
    },
}

struct ClientConn {
    sock: SockId,
    pending: usize,
    outstanding: u32,
    sent_at: Vec<SimTime>,
    msgs_on_conn: u32,
    connected: bool,
}

/// Closed-loop RPC client: `conns` connections, each keeping `pipeline`
/// requests in flight (Fig. 4 uses pipeline 1; Fig. 6 deep pipelines).
pub struct RpcClient {
    server: Ipv4Addr,
    port: u16,
    req_size: usize,
    /// Responses are expected (false = Fig. 6 RX-only streaming toward
    /// the server).
    pub expect_reply: bool,
    conns: Vec<ClientConn>,
    n_conns: u32,
    pipeline: u32,
    lifetime: Lifetime,
    /// Completed request/response exchanges.
    pub done: u64,
    /// Requests sent.
    pub sent: u64,
    /// End-to-end RPC latency histogram (nanoseconds).
    pub latency: Histogram,
    /// Connections fully closed (short-lived mode).
    pub conns_completed: u64,
    out: SendBuf,
    /// Measurement gate: RPCs completing before this instant are not
    /// recorded (warmup).
    pub measure_from: SimTime,
    /// Stop issuing new requests after this many have been sent
    /// (0 = unlimited).
    pub max_requests: u64,
    sock_index: HashMap<SockId, usize>,
}

impl RpcClient {
    /// Creates a client that opens `conns` connections to
    /// `server:port` with `pipeline` requests of `req_size` bytes in
    /// flight on each.
    pub fn new(
        server: Ipv4Addr,
        port: u16,
        conns: u32,
        pipeline: u32,
        req_size: usize,
        lifetime: Lifetime,
    ) -> Self {
        RpcClient {
            server,
            port,
            req_size,
            expect_reply: true,
            conns: Vec::new(),
            n_conns: conns,
            pipeline,
            lifetime,
            done: 0,
            sent: 0,
            latency: Histogram::new(),
            conns_completed: 0,
            out: SendBuf::default(),
            measure_from: SimTime::ZERO,
            max_requests: 0,
            sock_index: HashMap::new(),
        }
    }

    fn open_conn(&mut self, api: &mut dyn StackApi) {
        let sock = api.connect(self.server, self.port);
        let idx = self.conns.len();
        self.conns.push(ClientConn {
            sock,
            pending: 0,
            outstanding: 0,
            sent_at: Vec::new(),
            msgs_on_conn: 0,
            connected: false,
        });
        self.sock_index.insert(sock, idx);
    }

    fn fire(&mut self, idx: usize, api: &mut dyn StackApi) {
        if self.max_requests > 0 && self.sent >= self.max_requests {
            return;
        }
        let req = vec![0xabu8; self.req_size];
        let now = api.now();
        let sock = self.conns[idx].sock;
        // Don't launch a request if a previous one is still carried — the
        // frame must complete first.
        if self.out.pending(sock) > 4 * self.req_size {
            return;
        }
        self.out.send(api, sock, &req);
        let c = &mut self.conns[idx];
        c.outstanding += 1;
        c.sent_at.push(now);
        self.sent += 1;
    }
}

impl App for RpcClient {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.n_conns {
            self.open_conn(api);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        match ev {
            AppEvent::Connected { sock } => {
                let Some(&idx) = self.sock_index.get(&sock) else {
                    return;
                };
                self.conns[idx].connected = true;
                let burst = if self.expect_reply {
                    self.pipeline
                } else {
                    u32::MAX
                };
                let mut fired = 0;
                while fired < burst {
                    let before = self.sent;
                    self.fire(idx, api);
                    if self.sent == before {
                        break; // Send buffer full.
                    }
                    fired += 1;
                }
            }
            AppEvent::Writable { sock } => {
                self.out.on_writable(api, sock);
                // RX-only streaming mode: keep the pipe full.
                if !self.expect_reply {
                    if let Some(&idx) = self.sock_index.get(&sock) {
                        loop {
                            let before = self.sent;
                            self.fire(idx, api);
                            if self.sent == before {
                                break;
                            }
                        }
                    }
                }
            }
            AppEvent::Readable { sock } => {
                let Some(&idx) = self.sock_index.get(&sock) else {
                    return;
                };
                let data = api.recv(sock, usize::MAX);
                let now = api.now();
                self.conns[idx].pending += data.len();
                while self.conns[idx].pending >= self.req_size {
                    self.conns[idx].pending -= self.req_size;
                    self.done += 1;
                    let c = &mut self.conns[idx];
                    c.outstanding = c.outstanding.saturating_sub(1);
                    c.msgs_on_conn += 1;
                    if !c.sent_at.is_empty() {
                        let t0 = c.sent_at.remove(0);
                        if now >= self.measure_from {
                            self.latency.record_time(now - t0);
                        }
                    }
                    match self.lifetime {
                        Lifetime::Persistent => self.fire(idx, api),
                        Lifetime::ShortLived { msgs_per_conn } => {
                            if self.conns[idx].msgs_on_conn >= msgs_per_conn {
                                let c = &mut self.conns[idx];
                                c.msgs_on_conn = 0;
                                c.connected = false;
                                c.pending = 0;
                                c.sent_at.clear();
                                c.outstanding = 0;
                                api.close(sock);
                            } else {
                                self.fire(idx, api);
                            }
                        }
                    }
                }
            }
            AppEvent::Closed { sock } => {
                let Some(&idx) = self.sock_index.get(&sock) else {
                    return;
                };
                self.sock_index.remove(&sock);
                self.conns_completed += 1;
                if matches!(self.lifetime, Lifetime::ShortLived { .. }) {
                    // Re-establish (Fig. 5's connection churn).
                    let new_sock = api.connect(self.server, self.port);
                    let c = &mut self.conns[idx];
                    c.sock = new_sock;
                    self.sock_index.insert(new_sock, idx);
                }
            }
            _ => {}
        }
    }

    impl_as_any!();
}

/// A pure data sink: accepts server-streamed bytes and counts them
/// (the receiving end of Fig. 6's TX benchmark).
pub struct SinkClient {
    server: Ipv4Addr,
    port: u16,
    n_conns: u32,
    /// Bytes received.
    pub bytes: u64,
}

impl SinkClient {
    /// Creates a sink opening `conns` connections.
    pub fn new(server: Ipv4Addr, port: u16, conns: u32) -> Self {
        SinkClient {
            server,
            port,
            n_conns: conns,
            bytes: 0,
        }
    }
}

impl App for SinkClient {
    fn on_start(&mut self, api: &mut dyn StackApi) {
        for _ in 0..self.n_conns {
            api.connect(self.server, self.port);
        }
    }

    fn on_event(&mut self, ev: AppEvent, api: &mut dyn StackApi) {
        if let AppEvent::Readable { sock } = ev {
            self.bytes += api.recv(sock, usize::MAX).len() as u64;
        }
    }

    impl_as_any!();
}
