//! Packet formats for the TAS reproduction: Ethernet, IPv4, and TCP.
//!
//! Two representations coexist:
//!
//! * **Structured** headers ([`EthHeader`], [`Ipv4Header`], [`TcpHeader`],
//!   combined into a [`Segment`]) — what the simulator passes between
//!   agents, avoiding per-packet serialization in multi-million-packet
//!   experiments.
//! * **Wire** form — full byte-level serialization and parsing with Internet
//!   checksums and TCP options, via [`wire`]. Round-trip equivalence between
//!   the two is property-tested; the fast path's header handling cost is
//!   accounted by the CPU model either way.
//!
//! ECN is modeled faithfully (IP ECT/CE codepoints plus the TCP ECE/CWR
//! flags) because the DCTCP experiments depend on it.

pub mod checksum;
pub mod eth;
pub mod ipv4;
pub mod payload;
pub mod segment;
pub mod tcp;
pub mod wire;

pub use eth::{EthHeader, EtherType, MacAddr};
pub use ipv4::{Ecn, Ipv4Header};
pub use payload::PayloadBuf;
pub use segment::{FlowKey, Segment};
pub use tcp::{TcpFlags, TcpHeader, TcpOptions};

/// Errors produced when parsing wire-format packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Input shorter than the fixed header (or stated lengths).
    Truncated,
    /// A checksum did not verify.
    BadChecksum,
    /// A version/length field had an unsupported value.
    Unsupported,
    /// A malformed option list.
    BadOptions,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParseError::Truncated => "truncated packet",
            ParseError::BadChecksum => "checksum mismatch",
            ParseError::Unsupported => "unsupported header field",
            ParseError::BadOptions => "malformed options",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}
