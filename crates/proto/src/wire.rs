//! Byte-level wire codec for [`Segment`].
//!
//! The simulator passes structured segments, but the codec here is complete
//! (checksums, options, padding) and round-trip property-tested, so the
//! structured form provably carries everything the wire form does.

use crate::checksum::Checksum;
use crate::eth::{EthHeader, EtherType, MacAddr};
use crate::ipv4::{Ecn, Ipv4Header};
use crate::segment::Segment;
use crate::tcp::{TcpFlags, TcpHeader, TcpOptions};
use crate::ParseError;
use std::net::Ipv4Addr;

/// Serializes a segment to wire bytes, computing both checksums.
pub fn serialize(seg: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(seg.wire_len());
    // Ethernet.
    out.extend_from_slice(&seg.eth.dst.0);
    out.extend_from_slice(&seg.eth.src.0);
    out.extend_from_slice(&seg.eth.ethertype.value().to_be_bytes());
    // IPv4.
    let ip_start = out.len();
    let ip = &seg.ip;
    out.push(0x45); // Version 4, IHL 5.
    out.push((ip.dscp << 2) | ip.ecn.bits());
    out.extend_from_slice(&ip.total_len.to_be_bytes());
    out.extend_from_slice(&ip.ident.to_be_bytes());
    let mut flags_frag = ip.frag_offset & 0x1FFF;
    if ip.dont_fragment {
        flags_frag |= 0x4000;
    }
    if ip.more_fragments {
        flags_frag |= 0x2000;
    }
    out.extend_from_slice(&flags_frag.to_be_bytes());
    out.push(ip.ttl);
    out.push(ip.protocol);
    out.extend_from_slice(&[0, 0]); // Checksum placeholder.
    out.extend_from_slice(&ip.src.octets());
    out.extend_from_slice(&ip.dst.octets());
    let ipck = {
        let mut c = Checksum::new();
        c.add_bytes(&out[ip_start..ip_start + Ipv4Header::LEN]);
        c.finish()
    };
    out[ip_start + 10..ip_start + 12].copy_from_slice(&ipck.to_be_bytes());
    // TCP.
    let tcp_start = out.len();
    let t = &seg.tcp;
    out.extend_from_slice(&t.src_port.to_be_bytes());
    out.extend_from_slice(&t.dst_port.to_be_bytes());
    out.extend_from_slice(&t.seq.to_be_bytes());
    out.extend_from_slice(&t.ack.to_be_bytes());
    let data_off = (t.wire_len() / 4) as u8;
    out.push(data_off << 4);
    out.push(t.flags.0);
    out.extend_from_slice(&t.window.to_be_bytes());
    out.extend_from_slice(&[0, 0]); // Checksum placeholder.
    out.extend_from_slice(&t.urgent.to_be_bytes());
    write_options(&mut out, &t.options);
    debug_assert_eq!(out.len() - tcp_start, t.wire_len());
    out.extend_from_slice(&seg.payload);
    // TCP pseudo-header checksum.
    let tcp_len = (out.len() - tcp_start) as u16;
    let tcpck = {
        let mut c = Checksum::new();
        c.add_bytes(&ip.src.octets());
        c.add_bytes(&ip.dst.octets());
        c.add_u16(ip.protocol as u16);
        c.add_u16(tcp_len);
        c.add_bytes(&out[tcp_start..]);
        c.finish()
    };
    out[tcp_start + 16..tcp_start + 18].copy_from_slice(&tcpck.to_be_bytes());
    out
}

fn write_options(out: &mut Vec<u8>, o: &TcpOptions) {
    let start = out.len();
    if let Some(mss) = o.mss {
        out.push(2);
        out.push(4);
        out.extend_from_slice(&mss.to_be_bytes());
    }
    if let Some(ws) = o.wscale {
        out.push(3);
        out.push(3);
        out.push(ws);
    }
    if o.sack_permitted {
        out.push(4);
        out.push(2);
    }
    if let Some((val, ecr)) = o.timestamp {
        out.push(8);
        out.push(10);
        out.extend_from_slice(&val.to_be_bytes());
        out.extend_from_slice(&ecr.to_be_bytes());
    }
    if let Some((l, r)) = o.sack_block {
        out.push(5);
        out.push(10);
        out.extend_from_slice(&l.to_be_bytes());
        out.extend_from_slice(&r.to_be_bytes());
    }
    // Pad to 4-byte multiple with NOPs.
    while !(out.len() - start).is_multiple_of(4) {
        out.push(1);
    }
}

fn parse_options(mut b: &[u8]) -> Result<TcpOptions, ParseError> {
    let mut o = TcpOptions::default();
    while !b.is_empty() {
        match b[0] {
            0 => break,       // EOL.
            1 => b = &b[1..], // NOP.
            kind => {
                if b.len() < 2 {
                    return Err(ParseError::BadOptions);
                }
                let len = b[1] as usize;
                if len < 2 || len > b.len() {
                    return Err(ParseError::BadOptions);
                }
                let body = &b[2..len];
                match (kind, len) {
                    (2, 4) => o.mss = Some(u16::from_be_bytes([body[0], body[1]])),
                    (3, 3) => o.wscale = Some(body[0]),
                    (4, 2) => o.sack_permitted = true,
                    (8, 10) => {
                        o.timestamp = Some((
                            u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        ))
                    }
                    (5, 10) => {
                        o.sack_block = Some((
                            u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                            u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                        ))
                    }
                    // Unknown options are skipped (fast path would raise an
                    // exception; the codec is liberal in what it accepts).
                    _ => {}
                }
                b = &b[len..];
            }
        }
    }
    Ok(o)
}

/// Parses wire bytes into a segment, verifying both checksums.
pub fn parse(bytes: &[u8]) -> Result<Segment, ParseError> {
    if bytes.len() < EthHeader::LEN + Ipv4Header::LEN + TcpHeader::BASE_LEN {
        return Err(ParseError::Truncated);
    }
    let eth = EthHeader {
        dst: MacAddr(bytes[0..6].try_into().expect("sized")),
        src: MacAddr(bytes[6..12].try_into().expect("sized")),
        ethertype: EtherType::from_value(u16::from_be_bytes([bytes[12], bytes[13]])),
    };
    if eth.ethertype != EtherType::Ipv4 {
        return Err(ParseError::Unsupported);
    }
    let b = &bytes[EthHeader::LEN..];
    if b[0] >> 4 != 4 {
        return Err(ParseError::Unsupported);
    }
    let ihl = (b[0] & 0xF) as usize * 4;
    if ihl != Ipv4Header::LEN {
        // IP options: not generated by any stack here.
        return Err(ParseError::Unsupported);
    }
    if !crate::checksum::verify(&b[..ihl]) {
        return Err(ParseError::BadChecksum);
    }
    let total_len = u16::from_be_bytes([b[2], b[3]]);
    if (total_len as usize) > b.len() {
        return Err(ParseError::Truncated);
    }
    let flags_frag = u16::from_be_bytes([b[6], b[7]]);
    let ip = Ipv4Header {
        src: Ipv4Addr::new(b[12], b[13], b[14], b[15]),
        dst: Ipv4Addr::new(b[16], b[17], b[18], b[19]),
        dscp: b[1] >> 2,
        ecn: Ecn::from_bits(b[1]),
        ident: u16::from_be_bytes([b[4], b[5]]),
        dont_fragment: flags_frag & 0x4000 != 0,
        more_fragments: flags_frag & 0x2000 != 0,
        frag_offset: flags_frag & 0x1FFF,
        ttl: b[8],
        protocol: b[9],
        total_len,
    };
    if ip.protocol != Ipv4Header::PROTO_TCP {
        return Err(ParseError::Unsupported);
    }
    let t = &b[ihl..total_len as usize];
    if t.len() < TcpHeader::BASE_LEN {
        return Err(ParseError::Truncated);
    }
    let data_off = (t[12] >> 4) as usize * 4;
    if data_off < TcpHeader::BASE_LEN || data_off > t.len() {
        return Err(ParseError::Truncated);
    }
    // Verify the pseudo-header checksum over the whole TCP region.
    let mut c = Checksum::new();
    c.add_bytes(&ip.src.octets());
    c.add_bytes(&ip.dst.octets());
    c.add_u16(ip.protocol as u16);
    c.add_u16(t.len() as u16);
    c.add_bytes(t);
    if c.finish() != 0 {
        return Err(ParseError::BadChecksum);
    }
    let tcp = TcpHeader {
        src_port: u16::from_be_bytes([t[0], t[1]]),
        dst_port: u16::from_be_bytes([t[2], t[3]]),
        seq: u32::from_be_bytes([t[4], t[5], t[6], t[7]]),
        ack: u32::from_be_bytes([t[8], t[9], t[10], t[11]]),
        flags: TcpFlags(t[13]),
        window: u16::from_be_bytes([t[14], t[15]]),
        urgent: u16::from_be_bytes([t[18], t[19]]),
        options: parse_options(&t[TcpHeader::BASE_LEN..data_off])?,
    };
    Ok(Segment {
        eth,
        ip,
        tcp,
        payload: crate::payload::PayloadBuf::from_slice(&t[data_off..]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpHeader;

    fn sample() -> Segment {
        let mut tcp = TcpHeader::new(
            5000,
            80,
            0x01020304,
            0x0a0b0c0d,
            TcpFlags::ACK | TcpFlags::PSH,
        );
        tcp.window = 4096;
        tcp.options.timestamp = Some((123456, 654321));
        Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            tcp,
            b"hello, TAS".to_vec(),
            true,
        )
    }

    #[test]
    fn round_trip_data_segment() {
        let seg = sample();
        let bytes = serialize(&seg);
        assert_eq!(bytes.len(), seg.wire_len());
        let back = parse(&bytes).expect("parse");
        assert_eq!(back, seg);
    }

    #[test]
    fn round_trip_syn_with_all_options() {
        let mut tcp = TcpHeader::new(1, 2, 7, 0, TcpFlags::SYN | TcpFlags::ECE | TcpFlags::CWR);
        tcp.options.mss = Some(1460);
        tcp.options.wscale = Some(7);
        tcp.options.sack_permitted = true;
        tcp.options.timestamp = Some((1, 0));
        let seg = Segment::tcp(
            MacAddr::for_host(3),
            MacAddr::for_host(4),
            Ipv4Addr::new(10, 0, 0, 3),
            Ipv4Addr::new(10, 0, 0, 4),
            tcp,
            Vec::new(),
            true,
        );
        let back = parse(&serialize(&seg)).expect("parse");
        assert_eq!(back, seg);
    }

    #[test]
    fn corrupt_ip_checksum_rejected() {
        let mut bytes = serialize(&sample());
        bytes[EthHeader::LEN + 8] ^= 0xff; // TTL flips, IP checksum breaks.
        assert_eq!(parse(&bytes), Err(ParseError::BadChecksum));
    }

    #[test]
    fn corrupt_payload_rejected_by_tcp_checksum() {
        let mut bytes = serialize(&sample());
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert_eq!(parse(&bytes), Err(ParseError::BadChecksum));
    }

    #[test]
    fn truncated_rejected() {
        let bytes = serialize(&sample());
        assert_eq!(parse(&bytes[..30]), Err(ParseError::Truncated));
        assert_eq!(parse(&[]), Err(ParseError::Truncated));
    }

    #[test]
    fn non_ipv4_rejected() {
        let mut bytes = serialize(&sample());
        bytes[12] = 0x86; // EtherType -> IPv6-ish.
        bytes[13] = 0xdd;
        assert_eq!(parse(&bytes), Err(ParseError::Unsupported));
    }

    #[test]
    fn ce_mark_survives_round_trip() {
        let mut seg = sample();
        seg.ip.ecn = Ecn::Ce;
        // ECN lives in the IP header; re-serialize recomputes the checksum.
        let back = parse(&serialize(&seg)).expect("parse");
        assert_eq!(back.ip.ecn, Ecn::Ce);
    }
}
