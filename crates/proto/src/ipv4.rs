//! IPv4 header model.
//!
//! TAS's fast path assumes datacenter conditions: no IP fragmentation
//! (fragments are slow-path exceptions and dropped by the prototype) and
//! DCTCP-style ECN. The [`Ecn`] codepoints are first-class because switch
//! marking and receiver echo drive the congestion-control experiments.

use std::net::Ipv4Addr;

/// Explicit Congestion Notification codepoint (RFC 3168).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Ecn {
    /// Not ECN-capable transport.
    #[default]
    NotEct,
    /// ECN-capable transport, codepoint ECT(1).
    Ect1,
    /// ECN-capable transport, codepoint ECT(0) — what DCTCP senders set.
    Ect0,
    /// Congestion experienced — set by switches above the marking threshold.
    Ce,
}

impl Ecn {
    /// Two-bit field value.
    pub fn bits(self) -> u8 {
        match self {
            Ecn::NotEct => 0b00,
            Ecn::Ect1 => 0b01,
            Ecn::Ect0 => 0b10,
            Ecn::Ce => 0b11,
        }
    }

    /// Decodes the two-bit field.
    pub fn from_bits(b: u8) -> Ecn {
        match b & 0b11 {
            0b00 => Ecn::NotEct,
            0b01 => Ecn::Ect1,
            0b10 => Ecn::Ect0,
            _ => Ecn::Ce,
        }
    }

    /// Whether a switch may mark (rather than drop) this packet.
    pub fn is_capable(self) -> bool {
        !matches!(self, Ecn::NotEct)
    }
}

/// An IPv4 header. Options are not modeled (packets carrying IP options are
/// fast-path exceptions in TAS; the simulator never generates them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Differentiated services codepoint (6 bits).
    pub dscp: u8,
    /// ECN codepoint.
    pub ecn: Ecn,
    /// Identification field.
    pub ident: u16,
    /// Don't-fragment flag. Always set by datacenter TCP senders.
    pub dont_fragment: bool,
    /// More-fragments flag; a set flag makes the packet a fast-path
    /// exception.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units; nonzero is a fast-path exception.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number (6 = TCP).
    pub protocol: u8,
    /// Total length (header + payload) in bytes.
    pub total_len: u16,
}

impl Ipv4Header {
    /// Wire length of the (optionless) header.
    pub const LEN: usize = 20;
    /// Protocol number for TCP.
    pub const PROTO_TCP: u8 = 6;

    /// Creates a TCP-carrying datacenter header: DF set, TTL 64, ECT(0)
    /// when `ecn_capable`.
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, payload_len: u16, ecn_capable: bool) -> Self {
        Ipv4Header {
            src,
            dst,
            dscp: 0,
            ecn: if ecn_capable { Ecn::Ect0 } else { Ecn::NotEct },
            ident: 0,
            dont_fragment: true,
            more_fragments: false,
            frag_offset: 0,
            ttl: 64,
            protocol: Self::PROTO_TCP,
            total_len: Self::LEN as u16 + payload_len,
        }
    }

    /// True when this packet is a fragment (offset or MF set) — a fast-path
    /// exception per §4.1 of the paper.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.frag_offset != 0
    }

    /// Deterministic address for simulated host `n`: `10.x.y.z`.
    pub fn host_addr(n: u32) -> Ipv4Addr {
        let b = n.to_be_bytes();
        Ipv4Addr::new(10, b[1], b[2], b[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecn_bits_round_trip() {
        for e in [Ecn::NotEct, Ecn::Ect1, Ecn::Ect0, Ecn::Ce] {
            assert_eq!(Ecn::from_bits(e.bits()), e);
        }
    }

    #[test]
    fn ecn_capability() {
        assert!(!Ecn::NotEct.is_capable());
        assert!(Ecn::Ect0.is_capable());
        assert!(Ecn::Ce.is_capable());
    }

    #[test]
    fn tcp_header_defaults() {
        let h = Ipv4Header::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            100,
            true,
        );
        assert_eq!(h.total_len, 120);
        assert!(h.dont_fragment);
        assert!(!h.is_fragment());
        assert_eq!(h.ecn, Ecn::Ect0);
        assert_eq!(h.protocol, Ipv4Header::PROTO_TCP);
    }

    #[test]
    fn fragment_detection() {
        let mut h = Ipv4Header::tcp(Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, 0, false);
        assert!(!h.is_fragment());
        h.frag_offset = 8;
        assert!(h.is_fragment());
        h.frag_offset = 0;
        h.more_fragments = true;
        assert!(h.is_fragment());
    }

    #[test]
    fn host_addrs_unique() {
        assert_ne!(Ipv4Header::host_addr(1), Ipv4Header::host_addr(2));
        assert_eq!(Ipv4Header::host_addr(1), Ipv4Addr::new(10, 0, 0, 1));
    }
}
