//! Pooled, reference-counted payload buffers.
//!
//! [`PayloadBuf`] is what a [`Segment`](crate::Segment) carries instead of a
//! `Vec<u8>`: an `Rc<[u8]>` with an explicit logical length, recycled
//! through a thread-local free list. On the packet fast path this makes
//! segment construction allocation-free in steady state:
//!
//! * buffers of the standard capacity ([`POOL_BUF_CAP`], sized for an MTU
//!   payload) come from and return to the pool — after warm-up, building a
//!   data segment touches the allocator zero times;
//! * cloning a segment bumps a reference count instead of copying bytes
//!   (NICs, switches, and the pcap exporter all forward the same buffer);
//! * empty payloads (pure ACKs, control segments) share one static buffer
//!   and never allocate.
//!
//! Ownership rules: a `PayloadBuf` is immutable while shared. The one
//! mutation point, [`PayloadBuf::make_mut`], is copy-on-write — the fault
//! injector's bit corruption gets a unique buffer and cannot corrupt other
//! agents' views of the same packet. Buffers return to the pool when the
//! last reference drops; oversized (jumbo) buffers are exact-size one-offs
//! and simply deallocate. The pool is thread-local because the simulator is
//! single-threaded by design; `PayloadBuf` is deliberately `!Send`.

use std::cell::RefCell;
use std::ops::Deref;
use std::rc::Rc;

/// Capacity of pooled buffers: covers the simulated MTU payload (1448 data
/// bytes plus slack) without per-size pool classes.
pub const POOL_BUF_CAP: usize = 2048;

/// Upper bound on parked free buffers per thread (~8 MiB); beyond this,
/// returning buffers simply deallocate.
const POOL_MAX_FREE: usize = 4096;

thread_local! {
    /// Free list of unique-owner pooled buffers awaiting reuse.
    static POOL: RefCell<Vec<Rc<[u8]>>> = const { RefCell::new(Vec::new()) };
    /// The shared zero-length buffer backing all empty payloads.
    static EMPTY: Rc<[u8]> = Rc::from(&[][..]);
}

/// A reference-counted payload buffer with pooled backing storage.
///
/// Dereferences to `&[u8]`; compares by bytes.
///
/// # Examples
///
/// ```
/// use tas_proto::PayloadBuf;
/// let p = PayloadBuf::from_slice(b"abc");
/// assert_eq!(&p[..], b"abc");
/// let q = p.clone(); // refcount bump, no copy
/// assert_eq!(p, q);
/// assert!(PayloadBuf::empty().is_empty());
/// ```
#[derive(Clone)]
pub struct PayloadBuf {
    buf: Rc<[u8]>,
    len: u32,
}

/// A unique `Rc<[u8]>` of at least `len` bytes: pooled capacity when it
/// fits, an exact-size one-off otherwise.
fn alloc_raw(len: usize) -> Rc<[u8]> {
    if len <= POOL_BUF_CAP {
        if let Some(rc) = POOL.with(|p| p.borrow_mut().pop()) {
            return rc;
        }
        Rc::from(vec![0u8; POOL_BUF_CAP])
    } else {
        Rc::from(vec![0u8; len])
    }
}

impl PayloadBuf {
    /// The empty payload. Never allocates: all empties share one buffer.
    pub fn empty() -> PayloadBuf {
        PayloadBuf {
            buf: EMPTY.with(Rc::clone),
            len: 0,
        }
    }

    /// Copies `bytes` into a (pooled, when it fits) buffer.
    pub fn from_slice(bytes: &[u8]) -> PayloadBuf {
        if bytes.is_empty() {
            return PayloadBuf::empty();
        }
        PayloadBuf::with(bytes.len(), |dst| dst.copy_from_slice(bytes))
    }

    /// Allocates a buffer of logical length `len` and lets `fill` write it.
    ///
    /// This is the zero-copy construction path: ring buffers copy their
    /// bytes straight into the pooled buffer, with no intermediate `Vec`.
    pub fn with(len: usize, fill: impl FnOnce(&mut [u8])) -> PayloadBuf {
        if len == 0 {
            return PayloadBuf::empty();
        }
        let mut buf = alloc_raw(len);
        if let Some(dst) = Rc::get_mut(&mut buf) {
            fill(&mut dst[..len]);
        }
        PayloadBuf {
            buf,
            len: len as u32,
        }
    }

    /// Logical length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len as usize]
    }

    /// Mutable access, copy-on-write: a shared buffer is first copied into
    /// a unique one so other references keep their original bytes.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let len = self.len as usize;
        if Rc::get_mut(&mut self.buf).is_none() {
            let mut fresh = alloc_raw(len);
            if let Some(dst) = Rc::get_mut(&mut fresh) {
                dst[..len].copy_from_slice(&self.buf[..len]);
            }
            self.buf = fresh;
        }
        match Rc::get_mut(&mut self.buf) {
            Some(s) => &mut s[..len],
            // Unreachable: the buffer above is unique. Degrade gracefully
            // rather than panic (this module is in R4 scope).
            None => &mut [],
        }
    }
}

impl Drop for PayloadBuf {
    fn drop(&mut self) {
        // Park the buffer for reuse when this was the last reference and
        // the backing storage has the standard pooled capacity.
        if self.buf.len() == POOL_BUF_CAP && Rc::strong_count(&self.buf) == 1 {
            let rc = std::mem::replace(&mut self.buf, EMPTY.with(Rc::clone));
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < POOL_MAX_FREE {
                    pool.push(rc);
                }
            });
        }
    }
}

impl Deref for PayloadBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for PayloadBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for PayloadBuf {
    fn default() -> Self {
        PayloadBuf::empty()
    }
}

impl std::fmt::Debug for PayloadBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PayloadBuf({:?})", self.as_slice())
    }
}

impl PartialEq for PayloadBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for PayloadBuf {}

impl PartialEq<Vec<u8>> for PayloadBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<PayloadBuf> for Vec<u8> {
    fn eq(&self, other: &PayloadBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<&[u8]> for PayloadBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl<const N: usize> PartialEq<[u8; N]> for PayloadBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for PayloadBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl From<Vec<u8>> for PayloadBuf {
    fn from(v: Vec<u8>) -> PayloadBuf {
        PayloadBuf::from_slice(&v)
    }
}

impl From<&[u8]> for PayloadBuf {
    fn from(b: &[u8]) -> PayloadBuf {
        PayloadBuf::from_slice(b)
    }
}

impl<const N: usize> From<&[u8; N]> for PayloadBuf {
    fn from(b: &[u8; N]) -> PayloadBuf {
        PayloadBuf::from_slice(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bytes() {
        let p = PayloadBuf::from_slice(&[1, 2, 3, 4]);
        assert_eq!(p.len(), 4);
        assert_eq!(&p[..], &[1, 2, 3, 4]);
        assert_eq!(p, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_shares_one_buffer() {
        let a = PayloadBuf::empty();
        let b = PayloadBuf::from_slice(&[]);
        assert!(a.is_empty() && b.is_empty());
        assert!(Rc::ptr_eq(&a.buf, &b.buf));
    }

    #[test]
    fn pool_recycles_buffers() {
        let p = PayloadBuf::from_slice(&[7u8; 100]);
        let ptr = p.buf.as_ptr();
        drop(p);
        // The next pooled allocation must reuse the parked buffer.
        let q = PayloadBuf::from_slice(&[9u8; 50]);
        assert_eq!(q.buf.as_ptr(), ptr);
        assert_eq!(&q[..], &[9u8; 50]);
    }

    #[test]
    fn jumbo_buffers_are_exact_and_unpooled() {
        let big = vec![3u8; POOL_BUF_CAP + 1];
        let p = PayloadBuf::from_slice(&big);
        assert_eq!(p.buf.len(), POOL_BUF_CAP + 1);
        assert_eq!(p, big);
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut a = PayloadBuf::from_slice(&[1, 2, 3]);
        let b = a.clone();
        a.make_mut()[0] = 99;
        assert_eq!(&a[..], &[99, 2, 3]);
        assert_eq!(&b[..], &[1, 2, 3], "shared view must keep its bytes");
        // Unique buffers mutate in place without a copy.
        let ptr = a.buf.as_ptr();
        a.make_mut()[1] = 42;
        assert_eq!(a.buf.as_ptr(), ptr);
        assert_eq!(&a[..], &[99, 42, 3]);
    }

    #[test]
    fn shared_buffer_survives_one_side_dropping() {
        let a = PayloadBuf::from_slice(&[5; 10]);
        let b = a.clone();
        drop(a);
        assert_eq!(&b[..], &[5; 10]);
    }

    #[test]
    fn with_fills_exactly_len() {
        let p = PayloadBuf::with(5, |d| {
            for (i, x) in d.iter_mut().enumerate() {
                *x = i as u8;
            }
        });
        assert_eq!(&p[..], &[0, 1, 2, 3, 4]);
    }
}
