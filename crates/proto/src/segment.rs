//! The structured packet the simulator passes between agents.

use crate::eth::{EthHeader, MacAddr};
use crate::ipv4::{Ecn, Ipv4Header};
use crate::payload::PayloadBuf;
use crate::tcp::{TcpFlags, TcpHeader};
use std::net::Ipv4Addr;

/// A full Ethernet/IPv4/TCP packet in structured form.
///
/// `wire_len` reports the exact bytes the packet would occupy on the wire
/// (including option padding); links and switches charge serialization time
/// from it, so structured and wire forms are time-equivalent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// Ethernet header.
    pub eth: EthHeader,
    /// IPv4 header.
    pub ip: Ipv4Header,
    /// TCP header.
    pub tcp: TcpHeader,
    /// TCP payload bytes (pooled and reference-counted; cloning a segment
    /// shares the buffer instead of copying it).
    pub payload: PayloadBuf,
}

impl Segment {
    /// Builds a TCP segment between two simulated hosts, filling the IP
    /// total-length field and datacenter defaults (DF, TTL 64).
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
        tcp: TcpHeader,
        payload: impl Into<PayloadBuf>,
        ecn_capable: bool,
    ) -> Segment {
        let payload = payload.into();
        let ip = Ipv4Header::tcp(
            src_ip,
            dst_ip,
            (tcp.wire_len() + payload.len()) as u16,
            ecn_capable,
        );
        Segment {
            eth: EthHeader::ipv4(src_mac, dst_mac),
            ip,
            tcp,
            payload,
        }
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> u32 {
        self.payload.len() as u32
    }

    /// Bytes this packet occupies on the wire.
    pub fn wire_len(&self) -> usize {
        EthHeader::LEN + Ipv4Header::LEN + self.tcp.wire_len() + self.payload.len()
    }

    /// Length the segment occupies in sequence space (payload plus one for
    /// each of SYN and FIN).
    pub fn seq_space_len(&self) -> u32 {
        let mut n = self.payload_len();
        if self.tcp.flags.contains(TcpFlags::SYN) {
            n += 1;
        }
        if self.tcp.flags.contains(TcpFlags::FIN) {
            n += 1;
        }
        n
    }

    /// The flow key from the receiver's perspective.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey {
            local_ip: self.ip.dst,
            local_port: self.tcp.dst_port,
            remote_ip: self.ip.src,
            remote_port: self.tcp.src_port,
        }
    }

    /// True when the congestion-experienced codepoint is set.
    pub fn is_ce_marked(&self) -> bool {
        self.ip.ecn == Ecn::Ce
    }
}

/// A connection identifier from the local host's perspective.
///
/// # Examples
///
/// ```
/// use tas_proto::FlowKey;
/// use std::net::Ipv4Addr;
/// let k = FlowKey::new(Ipv4Addr::new(10, 0, 0, 1), 80, Ipv4Addr::new(10, 0, 0, 2), 5000);
/// assert_eq!(k.reversed().local_port, 5000);
/// assert_eq!(k.reversed().reversed(), k);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Local (this host's) address.
    pub local_ip: Ipv4Addr,
    /// Local port.
    pub local_port: u16,
    /// Remote address.
    pub remote_ip: Ipv4Addr,
    /// Remote port.
    pub remote_port: u16,
}

impl FlowKey {
    /// Creates a flow key.
    pub fn new(
        local_ip: Ipv4Addr,
        local_port: u16,
        remote_ip: Ipv4Addr,
        remote_port: u16,
    ) -> FlowKey {
        FlowKey {
            local_ip,
            local_port,
            remote_ip,
            remote_port,
        }
    }

    /// The same connection from the peer's perspective.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            local_ip: self.remote_ip,
            local_port: self.remote_port,
            remote_ip: self.local_ip,
            remote_port: self.local_port,
        }
    }
}

impl std::fmt::Display for FlowKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}<->{}:{}",
            self.local_ip, self.local_port, self.remote_ip, self.remote_port
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpHeader;

    fn sample(flags: TcpFlags, payload: usize) -> Segment {
        Segment::tcp(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TcpHeader::new(5000, 80, 100, 200, flags),
            vec![0xab; payload],
            true,
        )
    }

    #[test]
    fn wire_len_accounts_all_layers() {
        let s = sample(TcpFlags::ACK, 64);
        assert_eq!(s.wire_len(), 14 + 20 + 20 + 64);
        assert_eq!(s.ip.total_len, 20 + 20 + 64);
    }

    #[test]
    fn seq_space_len_counts_syn_fin() {
        assert_eq!(sample(TcpFlags::ACK, 10).seq_space_len(), 10);
        assert_eq!(sample(TcpFlags::SYN, 0).seq_space_len(), 1);
        assert_eq!(sample(TcpFlags::FIN | TcpFlags::ACK, 5).seq_space_len(), 6);
    }

    #[test]
    fn flow_key_is_receiver_perspective() {
        let s = sample(TcpFlags::ACK, 0);
        let k = s.flow_key();
        assert_eq!(k.local_port, 80);
        assert_eq!(k.remote_port, 5000);
        assert_eq!(k.local_ip, Ipv4Addr::new(10, 0, 0, 2));
    }

    #[test]
    fn ce_marking() {
        let mut s = sample(TcpFlags::ACK, 0);
        assert!(!s.is_ce_marked());
        s.ip.ecn = Ecn::Ce;
        assert!(s.is_ce_marked());
    }
}
