//! The Internet checksum (RFC 1071) used by IPv4 and TCP.

/// Incremental ones-complement sum accumulator.
///
/// # Examples
///
/// ```
/// use tas_proto::checksum::Checksum;
/// let mut c = Checksum::new();
/// c.add_bytes(&[0x45, 0x00, 0x00, 0x1c]);
/// let _folded: u16 = c.finish();
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Checksum {
    sum: u32,
}

impl Checksum {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a 16-bit word.
    pub fn add_u16(&mut self, v: u16) {
        self.sum += v as u32;
    }

    /// Adds a 32-bit value as two 16-bit words.
    pub fn add_u32(&mut self, v: u32) {
        self.add_u16((v >> 16) as u16);
        self.add_u16(v as u16);
    }

    /// Adds a byte slice, padding an odd trailing byte with zero.
    pub fn add_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(2);
        for c in &mut chunks {
            self.add_u16(u16::from_be_bytes([c[0], c[1]]));
        }
        if let [last] = chunks.remainder() {
            self.add_u16(u16::from_be_bytes([*last, 0]));
        }
    }

    /// Folds carries and returns the ones-complement checksum.
    pub fn finish(self) -> u16 {
        let mut s = self.sum;
        while s >> 16 != 0 {
            s = (s & 0xFFFF) + (s >> 16);
        }
        !(s as u16)
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum(bytes: &[u8]) -> u16 {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish()
}

/// Verifies that a region containing its own checksum field sums to zero.
pub fn verify(bytes: &[u8]) -> bool {
    let mut c = Checksum::new();
    c.add_bytes(bytes);
    c.finish() == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let mut c = Checksum::new();
        c.add_bytes(&data);
        // Sum is 0xddf2 before complement.
        assert_eq!(c.finish(), !0xddf2);
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Classic example header (checksum field zeroed at bytes 10..12).
        let hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(checksum(&hdr), 0xb861);
    }

    #[test]
    fn verify_including_checksum_field() {
        let mut hdr = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let ck = checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&hdr));
        hdr[0] ^= 0xff;
        assert!(!verify(&hdr));
    }

    #[test]
    fn odd_length_padding() {
        // Odd slice pads trailing byte as high-order.
        assert_eq!(checksum(&[0xab]), !0xab00);
    }

    #[test]
    fn empty_is_all_ones() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
