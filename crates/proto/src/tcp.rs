//! TCP header model: flags, options, and sequence-number arithmetic.

/// TCP flag bits.
///
/// # Examples
///
/// ```
/// use tas_proto::TcpFlags;
/// let f = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(f.contains(TcpFlags::SYN));
/// assert!(!f.contains(TcpFlags::FIN));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// No flags.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN: sender is done sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: the acknowledgment field is valid.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: the urgent pointer is valid (a fast-path exception).
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// ECE: ECN echo — receiver saw CE (or SYN-time ECN negotiation).
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// CWR: congestion window reduced (sender response to ECE).
    pub const CWR: TcpFlags = TcpFlags(0x80);

    /// True when all bits of `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when any bit of `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

/// The TCP options TAS negotiates and uses (§3.1–3.2 of the paper: MSS,
/// timestamps for RTT estimation, window scaling).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct TcpOptions {
    /// Maximum segment size (SYN-only).
    pub mss: Option<u16>,
    /// Window scale shift count (SYN-only).
    pub wscale: Option<u8>,
    /// Timestamp value and echo reply (TSval, TSecr).
    pub timestamp: Option<(u32, u32)>,
    /// SACK-permitted (SYN-only); TAS itself does not send SACK blocks but
    /// the Linux baseline model negotiates this.
    pub sack_permitted: bool,
    /// First SACK block (left, right edge), when the receiver holds
    /// out-of-order data (kind 5; one block suffices for the models here).
    pub sack_block: Option<(u32, u32)>,
}

impl TcpOptions {
    /// Wire length the options occupy, padded to a multiple of 4.
    pub fn wire_len(&self) -> usize {
        let mut n = 0;
        if self.mss.is_some() {
            n += 4;
        }
        if self.wscale.is_some() {
            n += 3;
        }
        if self.timestamp.is_some() {
            n += 10;
        }
        if self.sack_permitted {
            n += 2;
        }
        if self.sack_block.is_some() {
            n += 10;
        }
        (n + 3) & !3
    }
}

/// A TCP header in structured form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgment number (next expected byte), valid with ACK.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Receive window (unscaled wire value).
    pub window: u16,
    /// Urgent pointer (always 0 in the simulator; URG is an exception).
    pub urgent: u16,
    /// Options.
    pub options: TcpOptions,
}

impl TcpHeader {
    /// Wire length of the header without options.
    pub const BASE_LEN: usize = 20;

    /// Total wire length including padded options.
    pub fn wire_len(&self) -> usize {
        Self::BASE_LEN + self.options.wire_len()
    }

    /// A bare data/ACK header with the given endpoints.
    pub fn new(src_port: u16, dst_port: u16, seq: u32, ack: u32, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window: 0,
            urgent: 0,
            options: TcpOptions::default(),
        }
    }
}

/// Sequence-number arithmetic (RFC 793 §3.3: all comparisons mod 2^32).
pub mod seq {
    /// True when `a < b` in sequence space.
    pub fn lt(a: u32, b: u32) -> bool {
        (a.wrapping_sub(b) as i32) < 0
    }

    /// True when `a <= b` in sequence space.
    pub fn le(a: u32, b: u32) -> bool {
        a == b || lt(a, b)
    }

    /// True when `a > b` in sequence space.
    pub fn gt(a: u32, b: u32) -> bool {
        lt(b, a)
    }

    /// True when `a >= b` in sequence space.
    pub fn ge(a: u32, b: u32) -> bool {
        le(b, a)
    }

    /// `a - b` in sequence space, as a (possibly huge) forward distance.
    pub fn sub(a: u32, b: u32) -> u32 {
        a.wrapping_sub(b)
    }

    /// True when `x` lies in the half-open window `[lo, lo+len)`.
    pub fn in_window(x: u32, lo: u32, len: u32) -> bool {
        sub(x, lo) < len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_ops() {
        let f = TcpFlags::SYN | TcpFlags::ECE | TcpFlags::CWR;
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ECE));
        assert!(f.intersects(TcpFlags::CWR));
        assert!(!f.contains(TcpFlags::ACK));
        let mut g = TcpFlags::EMPTY;
        g |= TcpFlags::FIN;
        assert!(g.contains(TcpFlags::FIN));
    }

    #[test]
    fn option_lengths_are_padded() {
        let mut o = TcpOptions::default();
        assert_eq!(o.wire_len(), 0);
        o.mss = Some(1460);
        assert_eq!(o.wire_len(), 4);
        o.wscale = Some(7);
        assert_eq!(o.wire_len(), 8); // 4 + 3 padded to 8.
        o.timestamp = Some((1, 2));
        assert_eq!(o.wire_len(), 20); // 4 + 3 + 10 = 17 padded to 20.
        o.sack_permitted = true;
        assert_eq!(o.wire_len(), 20); // 19 padded to 20.
    }

    #[test]
    fn header_wire_len() {
        let mut h = TcpHeader::new(1, 2, 0, 0, TcpFlags::SYN);
        assert_eq!(h.wire_len(), 20);
        h.options.mss = Some(1460);
        assert_eq!(h.wire_len(), 24);
    }

    #[test]
    fn seq_arithmetic_wraps() {
        use super::seq::*;
        assert!(lt(u32::MAX, 0));
        assert!(gt(0, u32::MAX));
        assert!(le(5, 5));
        assert!(ge(5, 5));
        assert_eq!(sub(2, u32::MAX), 3);
        assert!(in_window(u32::MAX, u32::MAX - 1, 4));
        assert!(in_window(1, u32::MAX - 1, 4));
        assert!(!in_window(3, u32::MAX - 1, 4));
    }
}
