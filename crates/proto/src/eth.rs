//! Ethernet II framing.

/// A 48-bit MAC address.
///
/// # Examples
///
/// ```
/// use tas_proto::MacAddr;
/// let m = MacAddr([0x02, 0, 0, 0, 0, 0x2a]);
/// assert_eq!(format!("{m}"), "02:00:00:00:00:2a");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic locally-administered address for simulated host `n`.
    ///
    /// Hosts in the simulator derive their MAC from their index; the `0x02`
    /// prefix marks the address locally administered.
    pub fn for_host(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType of the encapsulated protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806) — used by the slow path's neighbor handling.
    Arp,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The numeric EtherType value.
    pub fn value(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }

    /// Classifies a numeric EtherType.
    pub fn from_value(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II header (no VLAN tag; datacenter fabric in the paper's
/// testbed is untagged at the host).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EthHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Encapsulated protocol.
    pub ethertype: EtherType,
}

impl EthHeader {
    /// Wire length of the header in bytes.
    pub const LEN: usize = 14;

    /// Creates an IPv4-carrying header.
    pub fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        EthHeader {
            dst,
            src,
            ethertype: EtherType::Ipv4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_round_trip() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::Other(0x86dd)] {
            assert_eq!(EtherType::from_value(et.value()), et);
        }
    }

    #[test]
    fn host_macs_unique_and_local() {
        let a = MacAddr::for_host(1);
        let b = MacAddr::for_host(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0] & 0x02, 0x02, "locally administered bit");
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", MacAddr::BROADCAST), "ff:ff:ff:ff:ff:ff");
    }
}
