//! The agent-based simulation engine.
//!
//! A simulation is a set of [`Agent`]s (hosts, switches, load generators)
//! that exchange typed messages and set timers through a [`Ctx`] handle. The
//! engine is single-threaded and deterministic: effects requested while
//! handling an event enqueue in call order (and are never observable by the
//! requesting handler), and ties on timestamps dispatch in insertion order.
//! Same-timestamp runs are drained from the queue in one batch.

use crate::queue::{EventId, EventQueue};
use crate::rng::Rng;
use crate::time::SimTime;
use std::any::Any;
use std::collections::VecDeque;

/// Identifier of an agent within a [`Sim`].
pub type AgentId = u32;

/// Handle to a pending timer, returned by [`Ctx::timer`]/[`Ctx::timer_at`]
/// and the `inject_*` methods. Pass to [`Ctx::cancel_timer`] (or
/// [`Sim::cancel`]) to drop the timer without dispatching. Stale handles
/// are a safe no-op.
pub type TimerId = EventId;

/// An event delivered to an agent.
#[derive(Debug)]
pub enum Event<M> {
    /// A timer previously set by this agent (or injected by the harness).
    /// `kind` discriminates timer uses within the agent; `data` is an
    /// agent-defined payload (e.g. a flow id or a generation counter used
    /// to ignore stale timers).
    Timer {
        /// Agent-defined timer class.
        kind: u32,
        /// Agent-defined payload.
        data: u64,
    },
    /// A message from another agent (or from the harness).
    Msg {
        /// The sending agent.
        from: AgentId,
        /// The message body.
        msg: M,
    },
}

/// A simulation participant.
///
/// Implementors must also provide `as_any`/`as_any_mut` so harnesses can
/// downcast agents after a run to read out results; the
/// [`impl_as_any!`](crate::impl_as_any) macro writes those two methods.
pub trait Agent<M>: 'static {
    /// Handles one event at the current simulated time.
    fn on_event(&mut self, ev: Event<M>, ctx: &mut Ctx<'_, M>);

    /// Upcast for downcasting concrete agent types after a run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for downcasting concrete agent types after a run.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Expands to the `as_any`/`as_any_mut` boilerplate of [`Agent`].
#[macro_export]
macro_rules! impl_as_any {
    () => {
        fn as_any(&self) -> &dyn ::std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn ::std::any::Any {
            self
        }
    };
}

struct Scheduled<M> {
    to: AgentId,
    ev: Event<M>,
}

/// Handle through which an agent interacts with the engine while handling
/// an event: read the clock, draw randomness, send messages, set timers,
/// or stop the run.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: AgentId,
    rng: &'a mut Rng,
    queue: &'a mut EventQueue<Scheduled<M>>,
    stop: &'a mut bool,
}

impl<M> Ctx<'_, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The handling agent's own id.
    pub fn id(&self) -> AgentId {
        self.self_id
    }

    /// The simulation's PRNG.
    pub fn rng(&mut self) -> &mut Rng {
        self.rng
    }

    /// Sends `msg` to agent `to`, arriving `delay` after now.
    pub fn send(&mut self, to: AgentId, delay: SimTime, msg: M) {
        self.send_at(to, self.now + delay, msg);
    }

    /// Sends `msg` to agent `to`, arriving at absolute time `at`.
    ///
    /// `at` earlier than now is clamped to now.
    pub fn send_at(&mut self, to: AgentId, at: SimTime, msg: M) {
        let from = self.self_id;
        self.queue.push(
            at.max(self.now),
            Scheduled {
                to,
                ev: Event::Msg { from, msg },
            },
        );
    }

    /// Sets a timer on the handling agent, firing `delay` after now.
    pub fn timer(&mut self, delay: SimTime, kind: u32, data: u64) -> TimerId {
        self.timer_at(self.now + delay, kind, data)
    }

    /// Sets a timer on the handling agent at absolute time `at`.
    pub fn timer_at(&mut self, at: SimTime, kind: u32, data: u64) -> TimerId {
        let to = self.self_id;
        self.queue.push(
            at.max(self.now),
            Scheduled {
                to,
                ev: Event::Timer { kind, data },
            },
        )
    }

    /// Cancels a pending timer: it is reclaimed without dispatching.
    ///
    /// Returns true if the handle was still live. Cancellation is
    /// guaranteed for timers strictly in the future; a timer at the instant
    /// currently dispatching may already be in flight (agents keep their
    /// own generation/liveness guards for that case). Stale handles are a
    /// safe no-op.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        self.queue.cancel(id)
    }

    /// Requests the run to stop after this event completes.
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// The simulation: agents, clock, event queue, and PRNG.
///
/// # Examples
///
/// ```
/// use tas_sim::{impl_as_any, Agent, Ctx, Event, Sim, SimTime};
///
/// struct Pinger {
///     got: u32,
/// }
/// impl Agent<u32> for Pinger {
///     fn on_event(&mut self, ev: Event<u32>, ctx: &mut Ctx<'_, u32>) {
///         if let Event::Msg { msg, .. } = ev {
///             self.got += msg;
///         }
///     }
///     impl_as_any!();
/// }
///
/// let mut sim = Sim::new(42);
/// let id = sim.add_agent(Box::new(Pinger { got: 0 }));
/// sim.inject_msg(SimTime::from_us(1), id, id, 7);
/// sim.run_until(SimTime::from_us(2));
/// assert_eq!(sim.agent::<Pinger>(id).got, 7);
/// ```
pub struct Sim<M> {
    now: SimTime,
    queue: EventQueue<Scheduled<M>>,
    agents: Vec<Option<Box<dyn Agent<M>>>>,
    rng: Rng,
    /// Same-timestamp run drained from the queue, awaiting dispatch.
    batch: VecDeque<(SimTime, Scheduled<M>)>,
    events_processed: u64,
    stopped: bool,
}

impl<M: 'static> Sim<M> {
    /// Creates a simulation seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            agents: Vec::new(),
            rng: Rng::new(seed),
            batch: VecDeque::new(),
            events_processed: 0,
            stopped: false,
        }
    }

    /// Registers an agent, returning its id.
    pub fn add_agent(&mut self, agent: Box<dyn Agent<M>>) -> AgentId {
        let id = self.agents.len() as AgentId;
        self.agents.push(Some(agent));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of registered agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// The simulation PRNG (for harness-side draws between runs).
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Injects a message from `from` to `to` at absolute time `at`.
    pub fn inject_msg(&mut self, at: SimTime, from: AgentId, to: AgentId, msg: M) {
        self.queue.push(
            at,
            Scheduled {
                to,
                ev: Event::Msg { from, msg },
            },
        );
    }

    /// Injects a timer event on agent `to` at absolute time `at`.
    pub fn inject_timer(&mut self, at: SimTime, to: AgentId, kind: u32, data: u64) -> TimerId {
        self.queue.push(
            at,
            Scheduled {
                to,
                ev: Event::Timer { kind, data },
            },
        )
    }

    /// Cancels a pending event from harness code (see [`Ctx::cancel_timer`]).
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.queue.cancel(id)
    }

    /// Immutable access to a concrete agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent<T: 'static>(&self, id: AgentId) -> &T {
        self.agents[id as usize]
            .as_ref()
            .expect("agent checked out")
            .as_any()
            .downcast_ref::<T>()
            .expect("agent type mismatch")
    }

    /// Mutable access to a concrete agent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the agent is not a `T`.
    pub fn agent_mut<T: 'static>(&mut self, id: AgentId) -> &mut T {
        self.agents[id as usize]
            .as_mut()
            .expect("agent checked out")
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("agent type mismatch")
    }

    /// Next event to dispatch: the head of the current batch, refilled by
    /// draining the queue's next same-timestamp run in one go.
    fn next_event(&mut self) -> Option<(SimTime, Scheduled<M>)> {
        if let Some(x) = self.batch.pop_front() {
            return Some(x);
        }
        self.queue.pop_batch(&mut self.batch);
        self.batch.pop_front()
    }

    /// Timestamp of the next event to dispatch, if any.
    fn peek_next_time(&mut self) -> Option<SimTime> {
        match self.batch.front() {
            Some((t, _)) => Some(*t),
            None => self.queue.peek_time(),
        }
    }

    /// Dispatches the next event. Returns `false` when the queue is empty
    /// or an agent requested a stop.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some((t, sch)) = self.next_event() else {
            return false;
        };
        debug_assert!(t >= self.now, "time must be monotonic");
        self.now = t;
        self.events_processed += 1;
        let idx = sch.to as usize;
        let Some(mut agent) = self.agents.get_mut(idx).and_then(Option::take) else {
            // Unknown/checked-out target: drop the event.
            return true;
        };
        let mut stop = false;
        {
            let mut ctx = Ctx {
                now: t,
                self_id: sch.to,
                rng: &mut self.rng,
                queue: &mut self.queue,
                stop: &mut stop,
            };
            agent.on_event(sch.ev, &mut ctx);
        }
        self.agents[idx] = Some(agent);
        if stop {
            self.stopped = true;
        }
        !self.stopped
    }

    /// Runs until the queue is exhausted, `deadline` is reached, or an
    /// agent stops the run. Returns the number of events dispatched.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let start = self.events_processed;
        while let Some(t) = self.peek_next_time() {
            if t > deadline || self.stopped {
                break;
            }
            if !self.step() {
                break;
            }
        }
        if self.now < deadline && !self.stopped {
            self.now = deadline;
        }
        self.events_processed - start
    }

    /// Runs for `dur` of simulated time from now.
    pub fn run_for(&mut self, dur: SimTime) -> u64 {
        let deadline = self.now + dur;
        self.run_until(deadline)
    }

    /// Runs until the event queue drains or `max_events` are dispatched.
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let start = self.events_processed;
        while self.events_processed - start < max_events {
            if !self.step() {
                break;
            }
        }
        self.events_processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping(u64),
        Pong(u64),
    }

    struct Ping {
        peer: AgentId,
        pongs: Vec<(SimTime, u64)>,
    }
    impl Agent<Msg> for Ping {
        fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            match ev {
                Event::Timer { data, .. } => {
                    ctx.send(self.peer, SimTime::from_us(10), Msg::Ping(data));
                }
                Event::Msg {
                    msg: Msg::Pong(v), ..
                } => {
                    self.pongs.push((ctx.now(), v));
                }
                _ => {}
            }
        }
        impl_as_any!();
    }

    struct Pong;
    impl Agent<Msg> for Pong {
        fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
            if let Event::Msg {
                from,
                msg: Msg::Ping(v),
            } = ev
            {
                ctx.send(from, SimTime::from_us(10), Msg::Pong(v + 1));
            }
        }
        impl_as_any!();
    }

    fn build() -> (Sim<Msg>, AgentId) {
        let mut sim = Sim::new(1);
        let pong = sim.add_agent(Box::new(Pong));
        let ping = sim.add_agent(Box::new(Ping {
            peer: pong,
            pongs: Vec::new(),
        }));
        (sim, ping)
    }

    #[test]
    fn round_trip_delivers_with_latency() {
        let (mut sim, ping) = build();
        sim.inject_timer(SimTime::from_us(5), ping, 0, 41);
        sim.run_until(SimTime::from_ms(1));
        let p = sim.agent::<Ping>(ping);
        assert_eq!(p.pongs, vec![(SimTime::from_us(25), 42)]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut sim, ping) = build();
        sim.inject_timer(SimTime::from_us(5), ping, 0, 0);
        // Deadline before the pong (t=25us) arrives.
        sim.run_until(SimTime::from_us(20));
        assert!(sim.agent::<Ping>(ping).pongs.is_empty());
        assert_eq!(sim.now(), SimTime::from_us(20));
        // Resume; the pong arrives.
        sim.run_until(SimTime::from_us(30));
        assert_eq!(sim.agent::<Ping>(ping).pongs.len(), 1);
    }

    #[test]
    fn stop_halts_immediately() {
        struct Stopper;
        impl Agent<Msg> for Stopper {
            fn on_event(&mut self, _ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
                ctx.stop();
            }
            impl_as_any!();
        }
        let mut sim: Sim<Msg> = Sim::new(2);
        let s = sim.add_agent(Box::new(Stopper));
        sim.inject_timer(SimTime::from_us(1), s, 0, 0);
        sim.inject_timer(SimTime::from_us(2), s, 0, 0);
        let n = sim.run_until(SimTime::from_ms(1));
        assert_eq!(n, 1, "second event must not dispatch after stop");
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, ping) = build();
            for i in 0..50 {
                sim.inject_timer(SimTime::from_us(i), ping, 0, i);
            }
            sim.run_to_completion(u64::MAX);
            sim.agent::<Ping>(ping).pongs.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct Arm {
            fired: Vec<u32>,
        }
        impl Agent<Msg> for Arm {
            fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
                if let Event::Timer { kind, .. } = ev {
                    self.fired.push(kind);
                    if kind == 0 {
                        // Arm an RTO, then supersede it with a shorter one:
                        // the superseded timer must be reclaimed, not fire.
                        let rto = ctx.timer(SimTime::from_us(100), 1, 0);
                        assert!(ctx.cancel_timer(rto));
                        ctx.timer(SimTime::from_us(10), 2, 0);
                        assert!(!ctx.cancel_timer(rto), "stale handle no-ops");
                    }
                }
            }
            impl_as_any!();
        }
        let mut sim: Sim<Msg> = Sim::new(7);
        let a = sim.add_agent(Box::new(Arm { fired: Vec::new() }));
        sim.inject_timer(SimTime::from_us(1), a, 0, 0);
        let cancelled = sim.inject_timer(SimTime::from_us(2), a, 3, 0);
        assert!(sim.cancel(cancelled));
        sim.run_until(SimTime::from_ms(1));
        assert_eq!(sim.agent::<Arm>(a).fired, vec![0, 2]);
    }

    #[test]
    fn same_timestamp_batch_preserves_insertion_order() {
        struct Rec {
            got: Vec<u64>,
        }
        impl Agent<Msg> for Rec {
            fn on_event(&mut self, ev: Event<Msg>, ctx: &mut Ctx<'_, Msg>) {
                if let Event::Timer { data, .. } = ev {
                    self.got.push(data);
                    // Events pushed mid-batch at the same instant dispatch
                    // after the already-drained run, in push order.
                    if data < 3 {
                        ctx.timer(SimTime::ZERO, 0, data + 100);
                    }
                }
            }
            impl_as_any!();
        }
        let mut sim: Sim<Msg> = Sim::new(9);
        let a = sim.add_agent(Box::new(Rec { got: Vec::new() }));
        let t = SimTime::from_us(4);
        for i in 0..6 {
            sim.inject_timer(t, a, 0, i);
        }
        sim.run_to_completion(u64::MAX);
        assert_eq!(
            sim.agent::<Rec>(a).got,
            vec![0, 1, 2, 3, 4, 5, 100, 101, 102]
        );
    }

    #[test]
    fn events_to_unknown_agents_are_dropped() {
        let mut sim: Sim<Msg> = Sim::new(3);
        sim.inject_msg(SimTime::from_us(1), 0, 99, Msg::Ping(1));
        assert_eq!(sim.run_to_completion(10), 1);
    }
}
