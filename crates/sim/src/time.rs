//! Simulated time.
//!
//! Time is a `u64` count of picoseconds. Picosecond resolution lets the CPU
//! cost model express single cycles at multi-GHz clock rates exactly
//! (1 cycle at 2.1 GHz ≈ 476 ps) while still covering ~213 days of simulated
//! time, far beyond any experiment in the paper.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant or duration in simulated time, in picoseconds.
///
/// The same type serves as both instant and duration; experiment code reads
/// naturally either way (`now + SimTime::from_us(100)`).
///
/// # Examples
///
/// ```
/// use tas_sim::SimTime;
/// let rtt = SimTime::from_us(100);
/// assert_eq!(rtt.as_nanos(), 100_000);
/// assert_eq!(rtt * 2, SimTime::from_us(200));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Creates a time from a floating-point second count (e.g. `1.5e-6`).
    ///
    /// Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e12).round() as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in whole nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Time in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Time in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Time as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; returns zero instead of wrapping.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow (relevant around [`SimTime::MAX`]).
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The earlier of two instants.
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Multiplies a duration by a floating point factor (used by jittered
    /// timers and rate computations). Result saturates at [`SimTime::MAX`].
    pub fn mul_f64(self, f: f64) -> SimTime {
        let v = self.0 as f64 * f;
        if v >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(v.max(0.0) as u64)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            write!(f, "never")
        } else if ps >= 1_000_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0 as f64 / 1e3)
        }
    }
}

/// Converts a transfer size and link rate into serialization time.
///
/// # Examples
///
/// ```
/// use tas_sim::time::{transmission_time, SimTime};
/// // 1250 bytes at 10 Gbps = 1 microsecond.
/// assert_eq!(transmission_time(1250, 10_000_000_000), SimTime::from_us(1));
/// ```
pub fn transmission_time(bytes: u64, bits_per_sec: u64) -> SimTime {
    debug_assert!(bits_per_sec > 0, "link rate must be positive");
    // ps = bits * 1e12 / bps, computed in u128 to avoid overflow.
    let ps = (bytes as u128 * 8 * 1_000_000_000_000) / bits_per_sec as u128;
    SimTime(ps as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_ms(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(5).as_millis(), 5_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_us(30));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn mul_f64_saturates() {
        assert_eq!(SimTime::MAX.mul_f64(2.0), SimTime::MAX);
        assert_eq!(SimTime::from_us(10).mul_f64(0.5), SimTime::from_us(5));
        assert_eq!(SimTime::from_us(10).mul_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn transmission_times() {
        // 64B at 40 Gbps = 12.8 ns.
        assert_eq!(transmission_time(64, 40_000_000_000).as_ps(), 12_800);
        // 1500B at 10 Gbps = 1.2 us.
        assert_eq!(transmission_time(1500, 10_000_000_000).as_nanos(), 1_200);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", SimTime::from_ns(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_us(3)), "3.000us");
        assert_eq!(format!("{}", SimTime::MAX), "never");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime(1)), None);
        assert_eq!(SimTime(1).checked_add(SimTime(2)), Some(SimTime(3)));
    }
}
