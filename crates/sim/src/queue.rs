//! The time-ordered event queue.
//!
//! A hierarchical timing wheel keyed by `(time, sequence)`: ties on time
//! dispatch in insertion order, which is what makes the whole simulation
//! deterministic.
//!
//! # Structure
//!
//! Four wheel levels of 256 slots each cover an expanding horizon above the
//! cursor (the end of the last drained window):
//!
//! | level | tick      | horizon  |
//! |-------|-----------|----------|
//! | 0     | 1024 ps   | ~262 ns  |
//! | 1     | ~262 ns   | ~67 us   |
//! | 2     | ~67 us    | ~17 ms   |
//! | 3     | ~17 ms    | ~4.4 s   |
//!
//! Events beyond the top horizon park in a small overflow [`BinaryHeap`] and
//! are pulled into the wheel as the cursor approaches them. Pushing and
//! popping are O(1) amortised; each event cascades through at most
//! `LEVELS - 1` slots on its way down. A drained level-0 slot is sorted by
//! `(time, seq)` into a ready deque, which restores the exact global
//! dispatch order of the old global binary heap (kept as [`HeapQueue`] for
//! differential testing and before/after benchmarks).
//!
//! # Memory layout
//!
//! Entry state is split by access pattern. A dense 12-byte [`CtlSlot`]
//! array holds generation + packed location — the only state the hot
//! cancel → re-push cycle of a timer reset ever *loads* — while keys and
//! payloads sit in a parallel [`Data`] array that the hot path only
//! *stores* to (reads happen at drain time), keeping those misses off the
//! critical path in the store buffer. Wheel slots hold bare `u32` entry
//! indices; cancellation writes a tagged hole over the entry's cell
//! instead of moving any other entry, and later pushes into the same slot
//! reuse holes through an intrusive free list threaded through the hole
//! cells, so a slot vec's length is bounded by its peak concurrent
//! entries. The net effect is ~one dependent cache miss per timer reset,
//! which keeps the event loop fast at terabit-sweep flow counts (100k+
//! concurrent timers).
//!
//! # Cancellation
//!
//! [`EventQueue::push`] returns an [`EventId`]; [`EventQueue::cancel`]
//! resolves it through the generation-checked slab, so a stale handle (the
//! event already dispatched, or the slot recycled) is a safe no-op. The
//! entry records where it lives: an entry still in a wheel slot is
//! tombstoned in O(1) at cancel time (slot vecs are unsorted until drained,
//! so this never perturbs dispatch order), while the rare entries already
//! in the sorted ready run or the overflow heap are marked and reclaimed
//! lazily, with a compaction sweep as backstop. A cancel-heavy workload
//! therefore keeps the resident size O(live) without sweeping on the hot
//! path.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// log2 of the level-0 tick in picoseconds (1024 ps ~= 1 ns).
const G0_SHIFT: u32 = 10;
/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 8;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Number of wheel levels; beyond the top horizon events overflow to a heap.
const LEVELS: usize = 4;
/// Compaction slack: sweep only once cancelled entries exceed live by this.
const COMPACT_SLACK: usize = 64;
/// High bit tags a wheel-slot cell as a hole (cancelled entry); the low 31
/// bits link to the slot's next hole. Slab indices stay below the tag.
const HOLE_TAG: u32 = 1 << 31;
/// "No next hole" in a hole cell's low 31 bits.
const HOLE_END: u32 = HOLE_TAG - 1;
/// "No holes" in a slot's free-list head.
const HOLE_NONE: u32 = u32::MAX;

const fn level_shift(level: usize) -> u32 {
    G0_SHIFT + LEVEL_BITS * level as u32
}

/// Handle to a pending event, returned by [`EventQueue::push`].
///
/// Pass it to [`EventQueue::cancel`] to drop the event without dispatching.
/// Handles are generation-checked: cancelling an event that already
/// dispatched (or was cancelled) is a no-op, even if its internal slot has
/// since been recycled for a newer event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// Where a pending entry physically lives, so cancel can reclaim it.
///
/// `meta` bit layout (see [`CtlSlot`]): `[7:0]` slot idx, `[9:8]` level,
/// `[13:12]` kind code (0 detached, 1 ready, 2 overflow, 3 wheel),
/// `[15]` cancelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// Not position-tracked (slot just allocated, not yet placed).
    Detached,
    /// In the sorted ready deque (cancel marks lazily; reclaimed at front).
    Ready,
    /// In the overflow heap (cancel marks lazily; reclaimed on pull).
    Overflow,
    /// In wheel vec `levels[level], slot idx, position pos`.
    Wheel { level: usize, idx: usize, pos: usize },
}

const META_KIND_SHIFT: u32 = 12;
const META_LEVEL_SHIFT: u32 = 8;
const META_CANCELLED: u32 = 1 << 15;

/// Per-entry control word: generation plus packed location. This is the
/// only thing the cancel → re-push cycle of a timer reset has to *load*
/// (12 bytes per entry keeps the array mostly cache-resident); the key
/// and payload in [`Data`] are write-only until the entry drains.
#[derive(Clone, Copy)]
struct CtlSlot {
    gen: u32,
    meta: u32,
    pos: u32,
}

/// Per-entry dispatch key and payload, indexed by control slot. Written
/// at push, read back only when the entry drains toward dispatch — never
/// loaded on the cancel path, so stores to it stay off the critical path.
struct Data<E> {
    at: u64,
    seq: u64,
    event: Option<E>,
}

impl CtlSlot {
    fn kind(&self) -> Kind {
        match (self.meta >> META_KIND_SHIFT) & 0b11 {
            0 => Kind::Detached,
            1 => Kind::Ready,
            2 => Kind::Overflow,
            _ => Kind::Wheel {
                level: ((self.meta >> META_LEVEL_SHIFT) & 0b11) as usize,
                idx: (self.meta & 0xff) as usize,
                pos: self.pos as usize,
            },
        }
    }

    fn cancelled(&self) -> bool {
        self.meta & META_CANCELLED != 0
    }
}

/// A `(time, seq, slot)` key for the sorted ready run.
#[derive(Clone, Copy)]
struct ReadyEnt {
    at: u64,
    seq: u64,
    ctl: u32,
}

/// Overflow-heap entry, ordered earliest-first by `(time, seq)`.
struct HeapEnt {
    at: u64,
    seq: u64,
    ctl: u32,
}

impl PartialEq for HeapEnt {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEnt {}
impl PartialOrd for HeapEnt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEnt {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Level {
    /// Slab indices of the entries in each wheel slot, unordered;
    /// [`HOLE_TAG`]-tagged cells are holes left by cancellation, linked
    /// into a per-slot free list and reused by later pushes.
    slots: Vec<Vec<u32>>,
    /// Head of each slot's hole free list ([`HOLE_NONE`] when full).
    hole_head: [u32; SLOTS],
    /// One bit per slot: set when the slot vec is non-empty.
    occ: [u64; SLOTS / 64],
}

impl Level {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            hole_head: [HOLE_NONE; SLOTS],
            occ: [0; SLOTS / 64],
        }
    }

    fn mark(&mut self, idx: usize) {
        self.occ[idx >> 6] |= 1u64 << (idx & 63);
    }

    fn clear(&mut self, idx: usize) {
        self.occ[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// First occupied slot index in circular order starting at `start`.
    fn first_occupied_from(&self, start: usize) -> Option<usize> {
        let (w0, b0) = (start >> 6, start & 63);
        let m = self.occ[w0] & (!0u64 << b0);
        if m != 0 {
            return Some((w0 << 6) + m.trailing_zeros() as usize);
        }
        for (w, &bits) in self.occ.iter().enumerate().skip(w0 + 1) {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
        }
        for (w, &bits) in self.occ.iter().enumerate().take(w0 + 1) {
            let mm = if w == w0 { bits & !(!0u64 << b0) } else { bits };
            if mm != 0 {
                return Some((w << 6) + mm.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// A deterministic min-queue of timestamped events.
///
/// # Examples
///
/// ```
/// use tas_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "late");
/// let early = q.push(SimTime::from_us(1), "early");
/// q.cancel(early);
/// assert_eq!(q.pop(), Some((SimTime::from_us(2), "late")));
/// ```
pub struct EventQueue<E> {
    levels: Vec<Level>,
    /// Control words, one per entry slot (see [`CtlSlot`]).
    ctl: Vec<CtlSlot>,
    /// Keys and payloads, parallel to `ctl` (see [`Data`]).
    data: Vec<Data<E>>,
    /// Recycled entry slots, LIFO.
    free: Vec<u32>,
    overflow: BinaryHeap<HeapEnt>,
    /// Entries below `cursor`, sorted by `(at, seq)`, ready to pop.
    ready: VecDeque<ReadyEnt>,
    /// Exclusive end of the drained window; wheel entries are all `>= cursor`.
    /// Always a multiple of the level-0 tick.
    cursor: u64,
    seq: u64,
    /// Physical entries resident across ready + wheel + overflow.
    resident: usize,
    /// Cancelled entries still physically resident (ready/overflow only;
    /// wheel holes are already released).
    cancelled_live: usize,
    /// How many of those sit in the ready run: while zero, peek/pop skip
    /// the per-entry liveness check entirely.
    marked_ready: usize,
    /// Reusable drain buffer for sorting a level-0 slot.
    scratch: Vec<ReadyEnt>,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            ctl: Vec::new(),
            data: Vec::new(),
            free: Vec::new(),
            overflow: BinaryHeap::new(),
            ready: VecDeque::new(),
            cursor: 0,
            seq: 0,
            resident: 0,
            cancelled_live: 0,
            marked_ready: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules `event` at absolute time `at`, returning a cancel handle.
    pub fn push(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.seq;
        self.seq += 1;
        let id = if let Some(slot) = self.free.pop() {
            let c = &mut self.ctl[slot as usize];
            c.meta = 0;
            let gen = c.gen;
            self.data[slot as usize] = Data {
                at: at.as_ps(),
                seq,
                event: Some(event),
            };
            EventId { slot, gen }
        } else {
            let slot = self.ctl.len() as u32;
            self.ctl.push(CtlSlot { gen: 0, meta: 0, pos: 0 });
            self.data.push(Data {
                at: at.as_ps(),
                seq,
                event: Some(event),
            });
            EventId { slot, gen: 0 }
        };
        self.resident += 1;
        self.place(id.slot, at.as_ps(), seq);
        id
    }

    /// Bumps an entry slot's generation and returns it to the free list.
    fn release(&mut self, slot: u32) {
        let c = &mut self.ctl[slot as usize];
        c.meta = 0;
        c.gen = c.gen.wrapping_add(1);
        self.free.push(slot);
    }

    fn is_cancelled(&self, slot: u32) -> bool {
        self.ctl[slot as usize].cancelled()
    }

    /// Cancels a pending event: it is dropped without dispatching.
    ///
    /// Returns true if the handle was still live. Stale handles (already
    /// dispatched or cancelled) are a safe no-op. Cancellation is guaranteed
    /// for events strictly in the future; an event at the instant currently
    /// being dispatched may already have left the queue.
    ///
    /// An entry still in a wheel slot is tombstoned in O(1) (slot vecs are
    /// unsorted until their level-0 drain sorts them, so this is invisible
    /// to dispatch order) and its cell recycled immediately. Entries already
    /// in the sorted ready run or the overflow heap are marked and reclaimed
    /// lazily — the rare cases — so the resident size stays O(live) without
    /// any sweep on the hot path.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let kind = match self.ctl.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && !s.cancelled() => {
                s.meta |= META_CANCELLED;
                s.kind()
            }
            _ => return false,
        };
        match kind {
            Kind::Wheel { level, idx, pos } => {
                let lv = &mut self.levels[level];
                debug_assert!(pos < lv.slots[idx].len() && lv.slots[idx][pos] == id.slot);
                // Turn the cell into a hole linked to the slot's free list;
                // no other entry moves, so no position fixups anywhere.
                lv.slots[idx][pos] = HOLE_TAG | (lv.hole_head[idx] & HOLE_END);
                lv.hole_head[idx] = pos as u32;
                // The payload is dropped now if dropping does anything;
                // otherwise the cell's next reuse overwrites it for free.
                if std::mem::needs_drop::<E>() {
                    self.data[id.slot as usize].event = None;
                }
                self.resident -= 1;
                self.release(id.slot);
            }
            Kind::Ready => {
                self.data[id.slot as usize].event = None;
                self.cancelled_live += 1;
                self.marked_ready += 1;
                if self.cancelled_live > self.live_len() + COMPACT_SLACK {
                    self.compact();
                }
            }
            Kind::Overflow => {
                self.data[id.slot as usize].event = None;
                self.cancelled_live += 1;
                if self.cancelled_live > self.live_len() + COMPACT_SLACK {
                    self.compact();
                }
            }
            Kind::Detached => {
                debug_assert!(false, "pending entry has a location");
                self.cancelled_live += 1;
            }
        }
        true
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.prepare_front() {
            return None;
        }
        let r = self.ready.pop_front()?;
        self.resident -= 1;
        let event = self.data[r.ctl as usize].event.take();
        self.release(r.ctl);
        debug_assert!(event.is_some(), "live ready entry has a payload");
        event.map(|e| (SimTime::from_ps(r.at), e))
    }

    /// Drains the maximal run of earliest events sharing one timestamp into
    /// `out` (appending, in dispatch order). Returns the number drained.
    pub fn pop_batch(&mut self, out: &mut VecDeque<(SimTime, E)>) -> usize {
        if !self.prepare_front() {
            return 0;
        }
        let t = self.ready.front().map(|r| r.at);
        let mut n = 0;
        while let Some(r) = self.ready.front() {
            if Some(r.at) != t || (self.marked_ready > 0 && self.is_cancelled(r.ctl)) {
                break;
            }
            let r = self.ready.pop_front().expect("front checked");
            self.resident -= 1;
            let event = self.data[r.ctl as usize].event.take();
            self.release(r.ctl);
            let Some(e) = event else {
                debug_assert!(false, "live ready entry has a payload");
                continue;
            };
            out.push_back((SimTime::from_ps(r.at), e));
            n += 1;
        }
        n
    }

    /// Timestamp of the earliest live event.
    ///
    /// Takes `&mut self` because finding the earliest event may cascade
    /// wheel slots (a pure reorganisation; no event is dispatched).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.prepare_front() {
            self.ready.front().map(|r| SimTime::from_ps(r.at))
        } else {
            None
        }
    }

    /// Number of physically resident entries (live + not-yet-reclaimed
    /// cancelled). Cancellation reclaims wheel entries immediately and
    /// ready/overflow marks are bounded by compaction, so this stays
    /// O(live); see [`Self::live_len`].
    pub fn len(&self) -> usize {
        self.resident
    }

    /// Number of live (non-cancelled) pending events.
    pub fn live_len(&self) -> usize {
        self.resident - self.cancelled_live
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }

    /// Routes an entry to the ready deque, a wheel slot, or the overflow
    /// heap, based on its distance from the cursor, recording its location
    /// in the slab so cancellation can find it again.
    fn place(&mut self, slot: u32, at: u64, seq: u64) {
        if at < self.cursor {
            // Inside the already-drained window: merge into the ready run.
            let r = ReadyEnt { at, seq, ctl: slot };
            if self.ready.back().is_none_or(|b| (b.at, b.seq) < (at, seq)) {
                self.ready.push_back(r);
            } else {
                let i = self.ready.partition_point(|x| (x.at, x.seq) < (at, seq));
                self.ready.insert(i, r);
            }
            let c = &mut self.ctl[slot as usize];
            c.meta = (c.meta & META_CANCELLED) | (1 << META_KIND_SHIFT);
            return;
        }
        debug_assert!(slot < HOLE_TAG, "entry index fits below the hole tag");
        for k in 0..LEVELS {
            let shift = level_shift(k);
            if (at >> shift) - (self.cursor >> shift) < SLOTS as u64 {
                let idx = ((at >> shift) as usize) & (SLOTS - 1);
                let lv = &mut self.levels[k];
                let head = lv.hole_head[idx];
                let pos = if head != HOLE_NONE {
                    // Reuse a hole left by a cancel: the slot vec's length
                    // stays bounded by its peak concurrent entries.
                    let p = head as usize;
                    let next = lv.slots[idx][p] & HOLE_END;
                    lv.hole_head[idx] = if next == HOLE_END { HOLE_NONE } else { next };
                    lv.slots[idx][p] = slot;
                    p
                } else {
                    let v = &mut lv.slots[idx];
                    let pos = v.len();
                    v.push(slot);
                    if pos == 0 {
                        lv.mark(idx);
                    }
                    pos
                };
                let c = &mut self.ctl[slot as usize];
                c.meta = (c.meta & META_CANCELLED)
                    | (3 << META_KIND_SHIFT)
                    | ((k as u32) << META_LEVEL_SHIFT)
                    | idx as u32;
                c.pos = pos as u32;
                return;
            }
        }
        self.overflow.push(HeapEnt { at, seq, ctl: slot });
        let c = &mut self.ctl[slot as usize];
        c.meta = (c.meta & META_CANCELLED) | (2 << META_KIND_SHIFT);
    }

    /// Ensures `ready.front()` is a live entry, cascading the wheel as
    /// needed. Returns false when no live events remain.
    fn prepare_front(&mut self) -> bool {
        loop {
            match self.ready.front() {
                // Nothing in the ready run is marked cancelled (the common
                // case): the front is live without touching its slab cell.
                Some(_) if self.marked_ready == 0 => return true,
                Some(r) if !self.is_cancelled(r.ctl) => return true,
                Some(_) => {
                    let r = self.ready.pop_front().expect("front checked");
                    self.resident -= 1;
                    self.cancelled_live -= 1;
                    self.marked_ready -= 1;
                    self.release(r.ctl);
                }
                None => {
                    if self.resident == 0 || !self.refill_ready() {
                        return false;
                    }
                }
            }
        }
    }

    /// Advances the cursor to the next non-empty window and drains it into
    /// the ready deque. Returns false if the wheel and overflow are empty.
    fn refill_ready(&mut self) -> bool {
        loop {
            // Earliest candidate window per level: (window start ps, level,
            // slot idx). On equal starts prefer the highest level so coarse
            // slots cascade before a fine slot at the same boundary drains.
            let mut best: Option<(u64, usize, usize)> = None;
            for k in 0..LEVELS {
                let shift = level_shift(k);
                let base = self.cursor >> shift;
                let start_idx = (base as usize) & (SLOTS - 1);
                if let Some(idx) = self.levels[k].first_occupied_from(start_idx) {
                    let off = (idx + SLOTS - start_idx) & (SLOTS - 1);
                    let window = (base + off as u64) << shift;
                    if best.is_none_or(|(bs, _, _)| window <= bs) {
                        best = Some((window, k, idx));
                    }
                }
            }
            match (best, self.overflow.peek().map(|e| e.at)) {
                (None, None) => return false,
                (Some((bs, _, _)), Some(ov)) if ov <= bs => self.pull_overflow(),
                (None, Some(_)) => self.pull_overflow(),
                (Some((bs, 0, idx)), _) => {
                    // Drain the level-0 slot: sort by (at, seq) to restore
                    // global dispatch order within its window, skipping
                    // holes (their cells were released at cancel).
                    let mut v = std::mem::take(&mut self.levels[0].slots[idx]);
                    self.levels[0].clear(idx);
                    self.levels[0].hole_head[idx] = HOLE_NONE;
                    self.scratch.clear();
                    for &slot in &v {
                        if slot & HOLE_TAG != 0 {
                            continue;
                        }
                        let d = &self.data[slot as usize];
                        self.scratch.push(ReadyEnt {
                            at: d.at,
                            seq: d.seq,
                            ctl: slot,
                        });
                    }
                    v.clear();
                    self.levels[0].slots[idx] = v;
                    self.scratch.sort_unstable_by_key(|r| (r.at, r.seq));
                    for r in &self.scratch {
                        let c = &mut self.ctl[r.ctl as usize];
                        c.meta = (c.meta & META_CANCELLED) | (1 << META_KIND_SHIFT);
                    }
                    self.ready.extend(self.scratch.drain(..));
                    self.cursor = bs + (1u64 << G0_SHIFT);
                    // Overflow entries may have drifted inside this window.
                    while self.overflow.peek().is_some_and(|e| e.at < self.cursor) {
                        let e = self.overflow.pop().expect("peek checked");
                        self.overflow_entry_down(e);
                    }
                    return true;
                }
                (Some((bs, k, idx)), _) => {
                    // Cascade: redistribute the winning coarse slot. Every
                    // entry in it is < bs + tick(k), so each lands at a
                    // strictly lower level relative to the advanced cursor.
                    // Holes are dropped on the floor (already released).
                    self.cursor = self.cursor.max(bs);
                    let mut v = std::mem::take(&mut self.levels[k].slots[idx]);
                    self.levels[k].clear(idx);
                    self.levels[k].hole_head[idx] = HOLE_NONE;
                    for &slot in &v {
                        if slot & HOLE_TAG != 0 {
                            continue;
                        }
                        let d = &self.data[slot as usize];
                        let (at, seq) = (d.at, d.seq);
                        self.place(slot, at, seq);
                    }
                    v.clear();
                    self.levels[k].slots[idx] = v;
                }
            }
        }
    }

    /// Pulls the earliest overflow entry down into the wheel.
    fn pull_overflow(&mut self) {
        let Some(e) = self.overflow.pop() else {
            return;
        };
        if self.is_cancelled(e.ctl) {
            self.reclaim_overflow(e.ctl);
            return;
        }
        let top = level_shift(LEVELS - 1);
        if (e.at >> top) - (self.cursor >> top) >= SLOTS as u64 {
            // Still beyond the top horizon (wheel was empty): jump the
            // cursor near the event so it fits. Safe: nothing is pending
            // below it. Keep the cursor tick-aligned.
            self.cursor = e.at & !((1u64 << G0_SHIFT) - 1);
        }
        self.place(e.ctl, e.at, e.seq);
    }

    /// Re-places an overflow entry that drifted into the drained window,
    /// or reclaims it if it was cancelled while parked.
    fn overflow_entry_down(&mut self, e: HeapEnt) {
        if self.is_cancelled(e.ctl) {
            self.reclaim_overflow(e.ctl);
        } else {
            self.place(e.ctl, e.at, e.seq);
        }
    }

    /// Drops a cancelled overflow entry that has left the heap.
    fn reclaim_overflow(&mut self, slot: u32) {
        self.release(slot);
        self.resident -= 1;
        self.cancelled_live -= 1;
    }

    /// Physically removes marked-cancelled entries. Only the ready run and
    /// the overflow heap can hold them (wheel cancels tombstone
    /// immediately), and both retains preserve survivor order, so dispatch
    /// order is unaffected.
    fn compact(&mut self) {
        let mut dead_ready = Vec::new();
        self.ready.retain(|r| {
            if self.ctl[r.ctl as usize].cancelled() {
                dead_ready.push(r.ctl);
                false
            } else {
                true
            }
        });
        let heap = std::mem::take(&mut self.overflow);
        let mut v = heap.into_vec();
        v.retain(|e| {
            if self.ctl[e.ctl as usize].cancelled() {
                dead_ready.push(e.ctl);
                false
            } else {
                true
            }
        });
        self.overflow = BinaryHeap::from(v);
        for slot in dead_ready {
            self.release(slot);
            self.resident -= 1;
            self.cancelled_live -= 1;
        }
        self.marked_ready = 0;
        debug_assert_eq!(self.cancelled_live, 0, "compaction reclaims all dead");
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// Inline entry for [`HeapQueue`], ordered earliest-first by `(time, seq)`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    ctl: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Generation-checked liveness slab for [`HeapQueue`].
#[derive(Clone, Copy, Default)]
struct GenSlot {
    gen: u32,
    cancelled: bool,
}

/// The pre-wheel global binary-heap queue.
///
/// Kept as the reference implementation: the proptest differential harness
/// checks the wheel dispatches identical `(time, seq)` sequences, and the
/// `simspeed` bench reports the heap's events/sec as the "before" number.
/// Cancellation here is lazy-only (skip on pop, no compaction), which is
/// exactly the ghost-entry growth the wheel fixes.
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    slots: Vec<GenSlot>,
    free: Vec<u32>,
    cancelled_live: usize,
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            cancelled_live: 0,
        }
    }

    /// Schedules `event` at absolute time `at`, returning a cancel handle.
    pub fn push(&mut self, at: SimTime, event: E) -> EventId {
        let seq = self.seq;
        self.seq += 1;
        let id = if let Some(slot) = self.free.pop() {
            EventId {
                slot,
                gen: self.slots[slot as usize].gen,
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(GenSlot::default());
            EventId { slot, gen: 0 }
        };
        self.heap.push(Entry {
            at,
            seq,
            ctl: id.slot,
            event,
        });
        id
    }

    /// Frees a slot; returns true if it was cancelled.
    fn release(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        let was = s.cancelled;
        s.cancelled = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        was
    }

    /// Cancels a pending event (lazy: reclaimed only when popped over).
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get_mut(id.slot as usize) {
            Some(s) if s.gen == id.gen && !s.cancelled => {
                s.cancelled = true;
                self.cancelled_live += 1;
                true
            }
            _ => false,
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(e) = self.heap.pop() {
            if self.release(e.ctl) {
                self.cancelled_live -= 1;
                continue;
            }
            return Some((e.at, e.event));
        }
        None
    }

    /// Timestamp of the earliest live event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(e) = self.heap.peek() {
            if self.slots[e.ctl as usize].cancelled {
                let e = self.heap.pop().expect("peek checked");
                self.release(e.ctl);
                self.cancelled_live -= 1;
                continue;
            }
            return Some(e.at);
        }
        None
    }

    /// Number of physically resident entries (live + cancelled ghosts).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn live_len(&self) -> usize {
        self.heap.len() - self.cancelled_live
    }

    /// True when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live_len() == 0
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(3), 3);
        q.push(SimTime::from_us(1), 1);
        q.push(SimTime::from_us(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(10), ());
        q.push(SimTime::from_ns(5), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 10);
        q.push(SimTime::from_us(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_us(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }

    #[test]
    fn spans_every_level_and_overflow() {
        let mut q = EventQueue::new();
        // One event per decade from 1 ns to ~100 s: exercises all four
        // levels plus the overflow heap.
        let times: Vec<SimTime> = (0..12).map(|d| SimTime::from_ps(10u64.pow(d + 3))).collect();
        for (i, &t) in times.iter().enumerate().rev() {
            q.push(t, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_skips_without_dispatch() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_us(1), "a");
        let b = q.push(SimTime::from_us(2), "b");
        let c = q.push(SimTime::from_us(3), "c");
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double cancel is a no-op");
        assert_eq!(q.pop(), Some((SimTime::from_us(1), "a")));
        assert!(!q.cancel(a), "cancel after dispatch is a no-op");
        assert_eq!(q.pop(), Some((SimTime::from_us(3), "c")));
        let _ = c;
        assert!(q.pop().is_none());
    }

    #[test]
    fn stale_handle_does_not_hit_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_us(1), 1);
        assert_eq!(q.pop(), Some((SimTime::from_us(1), 1)));
        // The slot is recycled for a new event; the stale handle must miss.
        let b = q.push(SimTime::from_us(2), 2);
        assert!(!q.cancel(a));
        assert_eq!(q.peek_time(), Some(SimTime::from_us(2)));
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_heavy_workload_stays_o_live() {
        // The ghost-timer regression: 100k RTO timers, each reset (cancel +
        // re-push) once. Resident size must track the live set, not the
        // total ever pushed.
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..100_000u64 {
            ids.push(q.push(SimTime::from_us(1000 + i), i));
        }
        for (i, id) in ids.into_iter().enumerate() {
            assert!(q.cancel(id));
            q.push(SimTime::from_us(2000 + i as u64), i as u64);
        }
        assert_eq!(q.live_len(), 100_000);
        assert!(
            q.len() <= 2 * q.live_len() + COMPACT_SLACK,
            "resident {} must stay O(live {})",
            q.len(),
            q.live_len()
        );
        // And the lazy-pop path never dispatches a cancelled entry.
        let mut popped = 0;
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert!(t >= SimTime::from_us(2000), "cancelled timer dispatched");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, 100_000);
    }

    #[test]
    fn repeated_cancel_into_one_slot_stays_compact() {
        // Hole pile-up: hammer cancel + re-push at the same far-future
        // instant so every entry lands in one wheel slot. Hole reuse must
        // keep the slot vec at its peak concurrent size, not grow per op.
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(50);
        let mut id = q.push(t, 0u64);
        for i in 1..100_000u64 {
            assert!(q.cancel(id));
            id = q.push(t, i);
        }
        assert_eq!(q.live_len(), 1);
        let resident_cells: usize = (0..LEVELS)
            .map(|k| (0..SLOTS).map(|i| q.levels[k].slots[i].len()).sum::<usize>())
            .sum();
        assert!(
            resident_cells <= 8,
            "slot cells {resident_cells} must stay at peak concurrency"
        );
        assert_eq!(q.pop(), Some((t, 99_999)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn batch_drains_same_timestamp_run() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(7);
        for i in 0..10 {
            q.push(t, i);
        }
        q.push(SimTime::from_us(8), 99);
        let mut out = VecDeque::new();
        assert_eq!(q.pop_batch(&mut out), 10);
        assert_eq!(out.len(), 10);
        for (i, (at, v)) in out.iter().enumerate() {
            assert_eq!(*at, t);
            assert_eq!(*v, i as i32);
        }
        out.clear();
        assert_eq!(q.pop_batch(&mut out), 1);
        assert_eq!(out[0], (SimTime::from_us(8), 99));
        assert_eq!(q.pop_batch(&mut out), 0);
    }

    #[test]
    fn matches_heap_reference_on_random_schedule() {
        // Seeded differential smoke test; the full proptest harness lives
        // in tests/proptest_simqueue.rs at the workspace root.
        let mut rng = Rng::new(0xF00D);
        let mut wheel = EventQueue::new();
        let mut heap = HeapQueue::new();
        let mut now = 0u64;
        let mut wheel_ids = Vec::new();
        let mut heap_ids = Vec::new();
        for step in 0..20_000u64 {
            match rng.next_u64() % 10 {
                0..=5 => {
                    // Mixed horizons: same-tick ties through far overflow.
                    let d = match rng.next_u64() % 5 {
                        0 => 0,
                        1 => rng.next_u64() % 1_000,
                        2 => rng.next_u64() % 1_000_000,
                        3 => rng.next_u64() % 1_000_000_000,
                        _ => rng.next_u64() % 10_000_000_000_000,
                    };
                    let at = SimTime::from_ps(now + d);
                    wheel_ids.push(wheel.push(at, step));
                    heap_ids.push(heap.push(at, step));
                }
                6 => {
                    if !wheel_ids.is_empty() {
                        let i = (rng.next_u64() as usize) % wheel_ids.len();
                        assert_eq!(
                            wheel.cancel(wheel_ids[i]),
                            heap.cancel(heap_ids[i]),
                        );
                    }
                }
                _ => {
                    let (w, h) = (wheel.pop(), heap.pop());
                    match (&w, &h) {
                        (Some((wt, wv)), Some((ht, hv))) => {
                            assert_eq!((wt, wv), (ht, hv));
                            now = now.max(wt.as_ps());
                        }
                        (None, None) => {}
                        _ => panic!("wheel {w:?} != heap {h:?}"),
                    }
                }
            }
        }
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w.is_some(), h.is_some());
            match (w, h) {
                (Some(a), Some(b)) => assert_eq!(a, b),
                _ => break,
            }
        }
    }
}
