//! The time-ordered event queue.
//!
//! A binary heap keyed by `(time, sequence)`: ties on time dispatch in
//! insertion order, which is what makes the whole simulation deterministic.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of timestamped events.
///
/// # Examples
///
/// ```
/// use tas_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_us(2), "late");
/// q.push(SimTime::from_us(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_us(1), "early")));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(3), 3);
        q.push(SimTime::from_us(1), 1);
        q.push(SimTime::from_us(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_ns(10), ());
        q.push(SimTime::from_ns(5), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(5)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), 10);
        q.push(SimTime::from_us(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_us(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
