//! Deterministic pseudo-random number generator.
//!
//! A self-contained xoshiro256++ generator seeded through SplitMix64. Every
//! experiment in `tas-bench` is reproducible from a single `u64` seed; we do
//! not depend on an external RNG crate in the engine so the event core stays
//! dependency-free and its stream is stable across toolchain updates.

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// # Examples
///
/// ```
/// use tas_sim::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator (stable function of this
    /// generator's next output); used to give each agent its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "invalid range");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "cannot choose from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn f64_bounds_and_mean() {
        let mut r = Rng::new(2);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = Rng::new(5);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn range_inclusive_degenerate() {
        let mut r = Rng::new(6);
        assert_eq!(r.range_inclusive(9, 9), 9);
        for _ in 0..100 {
            let v = r.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
        }
    }
}
