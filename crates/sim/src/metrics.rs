//! Metric recorders used by the experiment harnesses.
//!
//! The paper reports medians, high percentiles (90th/99th/max), means, and
//! time series (e.g. cores and throughput over time in Fig. 14). This module
//! provides an HDR-style log-linear histogram with bounded relative error,
//! a Welford mean/variance accumulator, a monotonic counter, and a sampled
//! time series.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Log-linear histogram over `u64` values with ~1.5% relative error.
///
/// Values are bucketed by (exponent, 64 linear sub-buckets), like
/// HdrHistogram with 6 significant bits. Memory is a flat `Vec<u64>`.
///
/// # Examples
///
/// ```
/// use tas_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((490..=510).contains(&p50));
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

fn bucket_of(v: u64) -> usize {
    // Values below SUB map to their own buckets; above, log-linear.
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) - SUB; // in [0, SUB)
    ((exp - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

fn bucket_high(i: usize) -> u64 {
    // Upper bound (inclusive) of bucket i; inverse of bucket_of.
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let exp = (i / SUB - 1) + SUB_BITS as u64;
    let sub = i % SUB;
    ((SUB + sub + 1) << (exp - SUB_BITS as u64)) - 1
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a [`SimTime`] in nanoseconds (the latency unit the paper
    /// tables use is microseconds; harnesses convert on output).
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound, so error is
    /// bounded by the bucket width). Returns 0 when empty; with a single
    /// sample every quantile is that sample exactly (the bucket bound is
    /// clamped to the observed `[min, max]`).
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    /// Like [`Histogram::quantile`] but distinguishes "no samples" from a
    /// recorded zero — report writers must not print a latency of 0 for a
    /// distribution that never saw a sample.
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_high(i).min(self.max).max(self.min));
            }
        }
        Some(self.max)
    }

    /// Median (0 when empty).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 90th percentile (0 when empty).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (0 when empty).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (0 when empty).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Evaluates the CDF at a list of points, returning `(point, fraction)`
    /// pairs — convenient for printing figure series.
    pub fn cdf_points(&self, points: &[u64]) -> Vec<(u64, f64)> {
        points
            .iter()
            .map(|&p| {
                let mut below = 0u64;
                for (i, &c) in self.counts.iter().enumerate() {
                    if bucket_high(i) <= p {
                        below += c;
                    } else {
                        break;
                    }
                }
                (p, below as f64 / self.total.max(1) as f64)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A monotonically increasing event counter with a rate helper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Count divided by a time window, as events/second.
    pub fn rate(&self, window: SimTime) -> f64 {
        if window == SimTime::ZERO {
            0.0
        } else {
            self.0 as f64 / window.as_secs_f64()
        }
    }
}

/// A time series of `(time, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.samples.push((t, v));
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean value over samples in `[from, to)`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let mut mv = MeanVar::new();
        for &(t, v) in &self.samples {
            if t >= from && t < to {
                mv.add(v);
            }
        }
        mv.mean()
    }

    /// Renders the series as text, one `t_ns value` line per sample, in
    /// insertion order. Values print via Rust's shortest-roundtrip float
    /// formatting, so two same-seed runs render byte-identically.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for &(t, v) in &self.samples {
            writeln!(out, "{} {}", t.as_nanos(), v).expect("string write");
        }
        out
    }

    /// Largest sampled value (0 when empty).
    pub fn max_value(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, &(_, v)| m.max(v))
    }
}

/// A deterministic fixed-cadence sampler bank: a set of named
/// [`TimeSeries`] that all advance on the *simulation* clock at a fixed
/// interval, regardless of how often (or how jittered) the driving timer
/// fires. Hosts call [`SeriesRecorder::begin`] from any periodic hook;
/// when it returns true they [`SeriesRecorder::record`] each gauge for
/// that tick. Samples are stamped on the cadence grid (multiples of the
/// interval), never at wall time or at the jittered observation time, so
/// two same-seed runs produce byte-identical
/// [`SeriesRecorder::render_text`] output — the property the determinism
/// tests pin and the Fig. 14-style plots depend on.
///
/// # Examples
///
/// ```
/// use tas_sim::{SeriesRecorder, SimTime};
/// let mut rec = SeriesRecorder::new(SimTime::from_ms(1));
/// // The driving timer fires late; the sample still lands on the grid.
/// if rec.begin(SimTime::from_us(1050)) {
///     rec.record("cores.active", 2.0);
/// }
/// assert_eq!(rec.series("cores.active").unwrap().samples()[0].0, SimTime::from_ms(1));
/// ```
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    interval: SimTime,
    next_due: SimTime,
    cur_tick: SimTime,
    series: BTreeMap<&'static str, TimeSeries>,
}

impl SeriesRecorder {
    /// Creates a recorder sampling every `interval` of simulated time.
    /// The first tick is at `interval` (not time zero, where gauges are
    /// all trivially empty).
    pub fn new(interval: SimTime) -> Self {
        assert!(interval > SimTime::ZERO, "cadence must be positive");
        SeriesRecorder {
            interval,
            next_due: interval,
            cur_tick: SimTime::ZERO,
            series: BTreeMap::new(),
        }
    }

    /// The sampling cadence.
    pub fn interval(&self) -> SimTime {
        self.interval
    }

    /// True when the next cadence tick has been reached.
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Starts a sample tick if one is due: aligns the tick stamp to the
    /// largest grid point at or before `now` (ticks the driving timer
    /// slept through are skipped, not back-filled) and returns true;
    /// otherwise returns false.
    pub fn begin(&mut self, now: SimTime) -> bool {
        if !self.due(now) {
            return false;
        }
        let n = now.as_ps() / self.interval.as_ps();
        self.cur_tick = SimTime::from_ps(n * self.interval.as_ps());
        self.next_due = self.cur_tick + self.interval;
        true
    }

    /// The grid stamp of the tick started by the last
    /// [`SeriesRecorder::begin`] (time zero before any tick).
    pub fn current_tick(&self) -> SimTime {
        self.cur_tick
    }

    /// Records `v` for `name` at the tick started by the last
    /// [`SeriesRecorder::begin`].
    pub fn record(&mut self, name: &'static str, v: f64) {
        let t = self.cur_tick;
        self.series.entry(name).or_default().push(t, v);
    }

    /// The recorded series for `name`, if any samples exist.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Iterates `(name, series)` in deterministic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&&'static str, &TimeSeries)> {
        self.series.iter()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders every series as text — `name t_ns value` lines, series in
    /// name order, samples in time order — byte-identical across same-seed
    /// runs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, ts) in &self.series {
            for &(t, v) in ts.samples() {
                writeln!(out, "{name} {} {}", t.as_nanos(), v).expect("string write");
            }
        }
        out
    }
}

/// Per-core utilization time series: one [`TimeSeries`] per core of a
/// pool, each sample the fraction of the elapsed interval the core spent
/// busy (the delta of the core's cumulative busy time over the delta of
/// sim time). Hosts sample it from their fixed-cadence hook so the
/// stamps land on the same grid as the [`SeriesRecorder`] gauges; unlike
/// `CorePool::sample_utilization` it owns its own window state, so it
/// never perturbs the proportionality controller's measurements.
///
/// A sample can exceed 1.0: work is charged to a core's timeline when
/// submitted, so a burst scheduled ahead of the sampling instant books
/// its cycles into the interval that submitted it.
#[derive(Clone, Debug)]
pub struct CoreUtilSeries {
    last_busy: Vec<SimTime>,
    last_at: SimTime,
    series: Vec<TimeSeries>,
}

impl CoreUtilSeries {
    /// Creates a series bank for `cores` cores, with the interval state
    /// starting at time zero.
    pub fn new(cores: usize) -> Self {
        CoreUtilSeries {
            last_busy: vec![SimTime::ZERO; cores],
            last_at: SimTime::ZERO,
            series: (0..cores).map(|_| TimeSeries::new()).collect(),
        }
    }

    /// Records one utilization sample per core at `now`. `busy` yields
    /// each core's cumulative busy time (`Core::busy_total`), in core
    /// order. Out-of-order or zero-width intervals are skipped.
    pub fn sample<I>(&mut self, now: SimTime, busy: I)
    where
        I: IntoIterator<Item = SimTime>,
    {
        if now <= self.last_at {
            return;
        }
        let dt = now.saturating_sub(self.last_at).as_nanos() as f64;
        for (i, b) in busy.into_iter().enumerate() {
            if i >= self.series.len() {
                break;
            }
            let db = b.saturating_sub(self.last_busy[i]).as_nanos() as f64;
            self.series[i].push(now, db / dt);
            self.last_busy[i] = b;
        }
        self.last_at = now;
    }

    /// Number of cores tracked.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no cores are tracked.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// The utilization series for core `i`.
    pub fn core(&self, i: usize) -> Option<&TimeSeries> {
        self.series.get(i)
    }

    /// All per-core series, in core order.
    pub fn all(&self) -> &[TimeSeries] {
        &self.series
    }

    /// Every sampled value across all cores, in (core, time) order —
    /// the flat pool the bench report's utilization quantiles digest.
    pub fn flat_values(&self) -> Vec<f64> {
        self.series
            .iter()
            .flat_map(|ts| ts.samples().iter().map(|&(_, v)| v))
            .collect()
    }
}

// ----------------------------------------------------------------------
// Metric registry.

/// Scope of a registered metric: machine-wide, per-core, or per-flow.
///
/// Scopes order after their name in the registry's deterministic dump, so
/// `fp.pkts_rx`, `fp.pkts_rx{core=0}`, `fp.pkts_rx{core=1}` always render
/// adjacent and in the same order regardless of registration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// One value for the whole host/device.
    Global,
    /// One value per core index.
    Core(u32),
    /// One value per flow identifier (fast-path flow id or connection
    /// slot; the owner defines the id space).
    Flow(u64),
    /// One value per tenant: a harness-assigned application/workload
    /// identity sharing the host's stack (the multi-tenant scenario
    /// suite's isolation accounting).
    Tenant(u32),
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scope::Global => Ok(()),
            Scope::Core(c) => write!(f, "{{core={c}}}"),
            Scope::Flow(id) => write!(f, "{{flow={id}}}"),
            Scope::Tenant(t) => write!(f, "{{tenant={t}}}"),
        }
    }
}

/// Identity of a registered metric: static name plus scope.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Static metric name, dotted by convention (`fp.pkts_rx`).
    pub name: &'static str,
    /// Metric scope.
    pub scope: Scope,
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.name, self.scope)
    }
}

/// A metric value as captured by [`Registry::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous level (may go down).
    Gauge(i64),
    /// Histogram summary (count/min/p50/p90/p99/p999/max) — the digest the
    /// paper's tables and the bench report schema use; full distributions
    /// stay with the owning harness.
    Histogram {
        /// Recorded samples.
        count: u64,
        /// Smallest sample.
        min: u64,
        /// Median.
        p50: u64,
        /// 90th percentile.
        p90: u64,
        /// 99th percentile.
        p99: u64,
        /// 99.9th percentile.
        p999: u64,
        /// Largest sample.
        max: u64,
    },
}

impl MetricValue {
    /// The counter value, or 0 for non-counters (convenient in asserts).
    pub fn as_counter(&self) -> u64 {
        match *self {
            MetricValue::Counter(v) => v,
            _ => 0,
        }
    }
}

/// Handle to a registered counter (O(1) increments after registration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Clone, Copy, Debug)]
enum MetricSlot {
    Counter(usize),
    Gauge(usize),
    Hist(usize),
}

/// A registry of named counters, gauges, and histograms with per-core and
/// per-flow scoping and a deterministic, ordered [`Registry::snapshot`].
///
/// Registration is get-or-create and returns a stable handle; updates
/// through a handle are an array index, so hot paths pay no map lookup.
/// The snapshot iterates a `BTreeMap`, never a hash map, so two same-seed
/// runs render byte-identical dumps (the determinism the flight-recorder
/// tests pin).
///
/// # Examples
///
/// ```
/// use tas_sim::metrics::{Registry, Scope};
/// let mut r = Registry::new();
/// let c = r.counter("fp.pkts_rx", Scope::Core(0));
/// r.inc(c);
/// r.add(c, 2);
/// assert_eq!(r.counter_value("fp.pkts_rx", Scope::Core(0)), 3);
/// let dump = r.snapshot().render_text();
/// assert_eq!(dump, "fp.pkts_rx{core=0} 3\n");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    index: BTreeMap<MetricKey, MetricSlot>,
    counters: Vec<u64>,
    gauges: Vec<i64>,
    hists: Vec<Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) a counter, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn counter(&mut self, name: &'static str, scope: Scope) -> CounterId {
        let key = MetricKey { name, scope };
        match self.index.get(&key) {
            Some(MetricSlot::Counter(i)) => CounterId(*i),
            Some(_) => panic!("metric {key} already registered as a non-counter"),
            None => {
                let i = self.counters.len();
                self.counters.push(0);
                self.index.insert(key, MetricSlot::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Registers (or finds) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn gauge(&mut self, name: &'static str, scope: Scope) -> GaugeId {
        let key = MetricKey { name, scope };
        match self.index.get(&key) {
            Some(MetricSlot::Gauge(i)) => GaugeId(*i),
            Some(_) => panic!("metric {key} already registered as a non-gauge"),
            None => {
                let i = self.gauges.len();
                self.gauges.push(0);
                self.index.insert(key, MetricSlot::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Registers (or finds) a histogram.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different kind.
    pub fn histogram(&mut self, name: &'static str, scope: Scope) -> HistId {
        let key = MetricKey { name, scope };
        match self.index.get(&key) {
            Some(MetricSlot::Hist(i)) => HistId(*i),
            Some(_) => panic!("metric {key} already registered as a non-histogram"),
            None => {
                let i = self.hists.len();
                self.hists.push(Histogram::new());
                self.index.insert(key, MetricSlot::Hist(i));
                HistId(i)
            }
        }
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0] += 1;
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Current value of a counter handle.
    pub fn get(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0] = v;
    }

    /// Adjusts a gauge by a signed delta.
    pub fn adjust(&mut self, id: GaugeId, d: i64) {
        self.gauges[id.0] += d;
    }

    /// Current value of a gauge handle.
    pub fn gauge_value_of(&self, id: GaugeId) -> i64 {
        self.gauges[id.0]
    }

    /// Records a histogram sample.
    pub fn record(&mut self, id: HistId, v: u64) {
        self.hists[id.0].record(v);
    }

    /// Value of a counter by key (0 when absent — asserts read naturally).
    pub fn counter_value(&self, name: &'static str, scope: Scope) -> u64 {
        match self.index.get(&MetricKey { name, scope }) {
            Some(MetricSlot::Counter(i)) => self.counters[*i],
            _ => 0,
        }
    }

    /// Value of a gauge by key (0 when absent).
    pub fn gauge_value(&self, name: &'static str, scope: Scope) -> i64 {
        match self.index.get(&MetricKey { name, scope }) {
            Some(MetricSlot::Gauge(i)) => self.gauges[*i],
            _ => 0,
        }
    }

    /// Borrow of a histogram by key.
    pub fn histogram_ref(&self, name: &'static str, scope: Scope) -> Option<&Histogram> {
        match self.index.get(&MetricKey { name, scope }) {
            Some(MetricSlot::Hist(i)) => Some(&self.hists[*i]),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Captures a deterministic, ordered dump of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (key, slot) in &self.index {
            let v = match *slot {
                MetricSlot::Counter(i) => MetricValue::Counter(self.counters[i]),
                MetricSlot::Gauge(i) => MetricValue::Gauge(self.gauges[i]),
                MetricSlot::Hist(i) => {
                    let h = &self.hists[i];
                    MetricValue::Histogram {
                        count: h.count(),
                        min: h.min(),
                        p50: h.p50(),
                        p90: h.p90(),
                        p99: h.p99(),
                        p999: h.p999(),
                        max: h.max(),
                    }
                }
            };
            snap.entries.insert(*key, v);
        }
        snap
    }
}

/// An ordered, immutable dump of a [`Registry`] (plus any derived entries
/// the owner inserts), comparable across runs byte-for-byte.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    entries: BTreeMap<MetricKey, MetricValue>,
}

impl Snapshot {
    /// Inserts (or overwrites) an entry — used by hosts to fold legacy
    /// stats structs and derived values into one ordered dump.
    pub fn insert(&mut self, name: &'static str, scope: Scope, v: MetricValue) {
        self.entries.insert(MetricKey { name, scope }, v);
    }

    /// Shorthand for inserting a counter entry.
    pub fn insert_counter(&mut self, name: &'static str, scope: Scope, v: u64) {
        self.insert(name, scope, MetricValue::Counter(v));
    }

    /// Shorthand for inserting a gauge entry.
    pub fn insert_gauge(&mut self, name: &'static str, scope: Scope, v: i64) {
        self.insert(name, scope, MetricValue::Gauge(v));
    }

    /// Looks up an entry.
    pub fn get(&self, name: &'static str, scope: Scope) -> Option<MetricValue> {
        self.entries.get(&MetricKey { name, scope }).copied()
    }

    /// Counter value by key (0 when absent).
    pub fn counter(&self, name: &'static str, scope: Scope) -> u64 {
        match self.get(name, scope) {
            Some(MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Gauge value by key (0 when absent).
    pub fn gauge(&self, name: &'static str, scope: Scope) -> i64 {
        match self.get(name, scope) {
            Some(MetricValue::Gauge(v)) => v,
            _ => 0,
        }
    }

    /// Iterates entries in deterministic (name, scope) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when every counter in `earlier` exists here with a value that
    /// has not decreased — the monotonicity the property tests pin.
    pub fn counters_monotone_since(&self, earlier: &Snapshot) -> bool {
        earlier.iter().all(|(k, v)| match v {
            MetricValue::Counter(old) => {
                matches!(self.entries.get(k), Some(MetricValue::Counter(new)) if new >= old)
            }
            _ => true,
        })
    }

    /// Renders the dump as text, one `key value` line per metric, in
    /// deterministic order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.entries {
            match v {
                MetricValue::Counter(c) => writeln!(out, "{key} {c}").expect("string write"),
                MetricValue::Gauge(g) => writeln!(out, "{key} {g}").expect("string write"),
                MetricValue::Histogram {
                    count,
                    min,
                    p50,
                    p90,
                    p99,
                    p999,
                    max,
                } => writeln!(
                    out,
                    "{key} count={count} min={min} p50={p50} p90={p90} p99={p99} p999={p999} max={max}"
                )
                .expect("string write"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_is_monotone_and_bounded() {
        let mut prev = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_536, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(b >= prev || v < 64, "buckets must not decrease");
            prev = b;
            assert!(bucket_high(b) >= v, "bucket_high({b}) must cover {v}");
            // Relative error of the bucket bound is < 1/32.
            if v >= 64 {
                let err = (bucket_high(b) - v) as f64 / v as f64;
                assert!(err < 0.04, "err {err} for v {v}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_accurate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, want) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - want).abs() / want < 0.04,
                "q{q}: got {got}, want {want}"
            );
        }
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
        // An empty distribution has no quantiles, and the named accessors
        // all agree on the 0 fallback.
        assert_eq!(h.try_quantile(0.5), None);
        assert_eq!((h.p50(), h.p90(), h.p99(), h.p999()), (0, 0, 0, 0));
    }

    #[test]
    fn histogram_single_sample_is_exact_at_every_quantile() {
        for v in [0u64, 1, 63, 64, 1000, 123_456_789] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.001, 0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(h.quantile(q), v, "q={q} v={v}");
            }
            assert_eq!(h.try_quantile(0.5), Some(v));
            assert_eq!((h.p50(), h.p90(), h.p99(), h.p999()), (v, v, v, v));
        }
    }

    #[test]
    fn histogram_p90_p999_accurate() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (got, want) in [
            (h.p90() as f64, 90_000.0),
            (h.p999() as f64, 99_900.0),
        ] {
            assert!((got - want).abs() / want < 0.04, "got {got}, want {want}");
        }
        // Two samples: p50 hits the first, high quantiles the second.
        let mut h2 = Histogram::new();
        h2.record(10);
        h2.record(1_000_000);
        assert_eq!(h2.p50(), 10);
        assert_eq!(h2.p999(), 1_000_000);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500 {
            a.record(v);
        }
        for v in 501..=1000 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05);
    }

    #[test]
    fn histogram_cdf_points() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        let pts = h.cdf_points(&[50, 200]);
        assert!((pts[0].1 - 0.5).abs() < 0.05);
        assert!((pts[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn meanvar_matches_closed_form() {
        let mut mv = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            mv.add(x);
        }
        assert!((mv.mean() - 5.0).abs() < 1e-12);
        assert!((mv.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::default();
        c.add(1000);
        assert_eq!(c.get(), 1000);
        assert!((c.rate(SimTime::from_ms(100)) - 10_000.0).abs() < 1e-6);
        assert_eq!(c.rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn timeseries_window_mean() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_us(i), i as f64);
        }
        let m = ts.mean_between(SimTime::from_us(2), SimTime::from_us(5));
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn series_recorder_samples_on_the_fixed_grid() {
        let mut rec = SeriesRecorder::new(SimTime::from_ms(1));
        // Jittered driving timer: fires late, sometimes skipping ticks.
        for (fire_us, v) in [(1_100u64, 1.0), (2_050, 2.0), (5_500, 3.0)] {
            let now = SimTime::from_us(fire_us);
            assert!(rec.begin(now));
            rec.record("q.depth", v);
        }
        let ts = rec.series("q.depth").unwrap();
        let stamps: Vec<u64> = ts.samples().iter().map(|&(t, _)| t.as_nanos()).collect();
        // Stamps land on cadence ticks: 1ms, 2ms, then (after skipping
        // 3–4ms, which the driver slept through) 5ms.
        assert_eq!(stamps, vec![1_000_000, 2_000_000, 5_000_000]);
        assert!(!rec.begin(SimTime::from_us(5_900)));
        assert!(rec.due(SimTime::from_ms(6)));
        // Deterministic render.
        assert_eq!(rec.render_text(), rec.render_text());
        assert!(rec.render_text().starts_with("q.depth 1000000 1\n"));
    }

    #[test]
    fn core_util_series_tracks_busy_deltas() {
        let mut u = CoreUtilSeries::new(2);
        // Interval 1: core 0 busy 50% of 1 ms, core 1 idle.
        u.sample(
            SimTime::from_ms(1),
            [SimTime::from_us(500), SimTime::ZERO],
        );
        // Interval 2: core 0 fully busy, core 1 over-committed (work
        // scheduled ahead books > 1.0).
        u.sample(
            SimTime::from_ms(2),
            [SimTime::from_us(1500), SimTime::from_us(1500)],
        );
        // Stale re-sample at the same instant is skipped.
        u.sample(
            SimTime::from_ms(2),
            [SimTime::from_us(9999), SimTime::from_us(9999)],
        );
        let c0: Vec<f64> = u.core(0).unwrap().samples().iter().map(|&(_, v)| v).collect();
        let c1: Vec<f64> = u.core(1).unwrap().samples().iter().map(|&(_, v)| v).collect();
        assert_eq!(c0, vec![0.5, 1.0]);
        assert_eq!(c1, vec![0.0, 1.5]);
        assert_eq!(u.len(), 2);
        assert_eq!(u.flat_values(), vec![0.5, 1.0, 0.0, 1.5]);
    }

    #[test]
    fn timeseries_render_text_is_deterministic() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_us(1), 1.5);
        ts.push(SimTime::from_us(2), 2.0);
        assert_eq!(ts.render_text(), "1000 1.5\n2000 2\n");
        assert_eq!(ts.max_value(), 2.0);
    }

    #[test]
    fn tenant_scope_renders_and_orders_deterministically() {
        assert_eq!(format!("{}", Scope::Tenant(3)), "{tenant=3}");
        let mut r = Registry::new();
        let t1 = r.counter("tenant.ops", Scope::Tenant(1));
        r.counter("tenant.ops", Scope::Tenant(0));
        r.inc(t1);
        // Distinct tenants are distinct metrics; dump order is by key.
        assert_eq!(r.counter_value("tenant.ops", Scope::Tenant(0)), 0);
        assert_eq!(r.counter_value("tenant.ops", Scope::Tenant(1)), 1);
        let snap = r.snapshot();
        let names: Vec<String> = snap.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, vec!["tenant.ops{tenant=0}", "tenant.ops{tenant=1}"]);
    }

    #[test]
    fn registry_get_or_create_returns_same_handle() {
        let mut r = Registry::new();
        let a = r.counter("x", Scope::Global);
        let b = r.counter("x", Scope::Global);
        assert_eq!(a, b);
        r.inc(a);
        r.inc(b);
        assert_eq!(r.get(a), 2);
        // Distinct scopes are distinct metrics.
        let c = r.counter("x", Scope::Core(1));
        assert_ne!(a, c);
        assert_eq!(r.counter_value("x", Scope::Core(1)), 0);
    }

    #[test]
    fn registry_snapshot_order_is_registration_independent() {
        let mut a = Registry::new();
        a.counter("b.second", Scope::Global);
        let ca = a.counter("a.first", Scope::Core(1));
        a.counter("a.first", Scope::Core(0));
        a.inc(ca);
        let mut b = Registry::new();
        let cb = b.counter("a.first", Scope::Core(1));
        b.counter("a.first", Scope::Core(0));
        b.counter("b.second", Scope::Global);
        b.inc(cb);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(
            a.snapshot().render_text(),
            "a.first{core=0} 0\na.first{core=1} 1\nb.second 0\n"
        );
    }

    #[test]
    fn registry_gauges_and_histograms() {
        let mut r = Registry::new();
        let g = r.gauge("cores.active", Scope::Global);
        r.set(g, 4);
        r.adjust(g, -1);
        assert_eq!(r.gauge_value("cores.active", Scope::Global), 3);
        let h = r.histogram("rtt_ns", Scope::Flow(7));
        for v in 1..=100 {
            r.record(h, v);
        }
        let snap = r.snapshot();
        match snap.get("rtt_ns", Scope::Flow(7)) {
            Some(MetricValue::Histogram { count, min, max, .. }) => {
                assert_eq!((count, min, max), (100, 1, 100));
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        assert_eq!(snap.gauge("cores.active", Scope::Global), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_kind_conflict_panics() {
        let mut r = Registry::new();
        r.counter("x", Scope::Global);
        r.gauge("x", Scope::Global);
    }

    #[test]
    fn snapshot_monotonicity_check() {
        let mut r = Registry::new();
        let c = r.counter("n", Scope::Global);
        r.inc(c);
        let early = r.snapshot();
        r.inc(c);
        let late = r.snapshot();
        assert!(late.counters_monotone_since(&early));
        assert!(!early.counters_monotone_since(&late));
        // Gauges may move either way without violating monotonicity.
        let mut r2 = Registry::new();
        let g = r2.gauge("lvl", Scope::Global);
        r2.set(g, 5);
        let e2 = r2.snapshot();
        r2.set(g, 1);
        assert!(r2.snapshot().counters_monotone_since(&e2));
    }

    #[test]
    fn snapshot_insert_and_render() {
        let mut s = Snapshot::default();
        s.insert_counter("z", Scope::Global, 9);
        s.insert_gauge("a", Scope::Flow(2), -3);
        assert_eq!(s.render_text(), "a{flow=2} -3\nz 9\n");
        assert_eq!(s.counter("z", Scope::Global), 9);
        assert_eq!(s.len(), 2);
    }
}
