//! Metric recorders used by the experiment harnesses.
//!
//! The paper reports medians, high percentiles (90th/99th/max), means, and
//! time series (e.g. cores and throughput over time in Fig. 14). This module
//! provides an HDR-style log-linear histogram with bounded relative error,
//! a Welford mean/variance accumulator, a monotonic counter, and a sampled
//! time series.

use crate::time::SimTime;

/// Log-linear histogram over `u64` values with ~1.5% relative error.
///
/// Values are bucketed by (exponent, 64 linear sub-buckets), like
/// HdrHistogram with 6 significant bits. Memory is a flat `Vec<u64>`.
///
/// # Examples
///
/// ```
/// use tas_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((490..=510).contains(&p50));
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
    sum: u128,
}

const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

fn bucket_of(v: u64) -> usize {
    // Values below SUB map to their own buckets; above, log-linear.
    if v < SUB {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) - SUB; // in [0, SUB)
    ((exp - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

fn bucket_high(i: usize) -> u64 {
    // Upper bound (inclusive) of bucket i; inverse of bucket_of.
    let i = i as u64;
    if i < SUB {
        return i;
    }
    let exp = (i / SUB - 1) + SUB_BITS as u64;
    let sub = i % SUB;
    ((SUB + sub + 1) << (exp - SUB_BITS as u64)) - 1
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: Vec::new(),
            total: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a [`SimTime`] in nanoseconds (the latency unit the paper
    /// tables use is microseconds; harnesses convert on output).
    pub fn record_time(&mut self, t: SimTime) {
        self.record(t.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound, so error is
    /// bounded by the bucket width). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Evaluates the CDF at a list of points, returning `(point, fraction)`
    /// pairs — convenient for printing figure series.
    pub fn cdf_points(&self, points: &[u64]) -> Vec<(u64, f64)> {
        points
            .iter()
            .map(|&p| {
                let mut below = 0u64;
                for (i, &c) in self.counts.iter().enumerate() {
                    if bucket_high(i) <= p {
                        below += c;
                    } else {
                        break;
                    }
                }
                (p, below as f64 / self.total.max(1) as f64)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Welford online mean/variance accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A monotonically increasing event counter with a rate helper.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Count divided by a time window, as events/second.
    pub fn rate(&self, window: SimTime) -> f64 {
        if window == SimTime::ZERO {
            0.0
        } else {
            self.0 as f64 / window.as_secs_f64()
        }
    }
}

/// A time series of `(time, value)` samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    samples: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.samples.push((t, v));
    }

    /// All samples in insertion order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean value over samples in `[from, to)`.
    pub fn mean_between(&self, from: SimTime, to: SimTime) -> f64 {
        let mut mv = MeanVar::new();
        for &(t, v) in &self.samples {
            if t >= from && t < to {
                mv.add(v);
            }
        }
        mv.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_is_monotone_and_bounded() {
        let mut prev = 0;
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1000, 65_536, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(b >= prev || v < 64, "buckets must not decrease");
            prev = b;
            assert!(bucket_high(b) >= v, "bucket_high({b}) must cover {v}");
            // Relative error of the bucket bound is < 1/32.
            if v >= 64 {
                let err = (bucket_high(b) - v) as f64 / v as f64;
                assert!(err < 0.04, "err {err} for v {v}");
            }
        }
    }

    #[test]
    fn histogram_quantiles_accurate() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        for (q, want) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(
                (got - want).abs() / want < 0.04,
                "q{q}: got {got}, want {want}"
            );
        }
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=500 {
            a.record(v);
        }
        for v in 501..=1000 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let p50 = a.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.05);
    }

    #[test]
    fn histogram_cdf_points() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v);
        }
        let pts = h.cdf_points(&[50, 200]);
        assert!((pts[0].1 - 0.5).abs() < 0.05);
        assert!((pts[1].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn meanvar_matches_closed_form() {
        let mut mv = MeanVar::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            mv.add(x);
        }
        assert!((mv.mean() - 5.0).abs() < 1e-12);
        assert!((mv.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn counter_rate() {
        let mut c = Counter::default();
        c.add(1000);
        assert_eq!(c.get(), 1000);
        assert!((c.rate(SimTime::from_ms(100)) - 10_000.0).abs() < 1e-6);
        assert_eq!(c.rate(SimTime::ZERO), 0.0);
    }

    #[test]
    fn timeseries_window_mean() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_us(i), i as f64);
        }
        let m = ts.mean_between(SimTime::from_us(2), SimTime::from_us(5));
        assert!((m - 3.0).abs() < 1e-12);
    }
}
