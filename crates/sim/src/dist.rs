//! Random distributions used by the evaluation workloads.
//!
//! The paper's experiments draw from three families: exponential
//! inter-arrivals (Poisson flow arrivals, Fig. 11/12), bounded Pareto flow
//! sizes (Fig. 11), and a zipf key popularity distribution for the key-value
//! store workload (§5.3, s = 0.9).

use crate::rng::Rng;

/// Exponential distribution with the given mean.
///
/// # Examples
///
/// ```
/// use tas_sim::{dist::Exponential, Rng};
/// let exp = Exponential::new(10.0);
/// let mut rng = Rng::new(1);
/// assert!(exp.sample(&mut rng) >= 0.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with mean `mean`.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive");
        Exponential { mean }
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF; 1 - U avoids ln(0).
        -self.mean * (1.0 - rng.f64()).ln()
    }
}

/// Bounded Pareto distribution over `[min, max]` with shape `alpha`.
///
/// Used for the heavy-tailed flow sizes in the congestion-control
/// experiments (Fig. 11).
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    min: f64,
    max: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics if `min <= 0`, `max <= min`, or `alpha <= 0`.
    pub fn new(min: f64, max: f64, alpha: f64) -> Self {
        assert!(min > 0.0, "min must be positive");
        assert!(max > min, "max must exceed min");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { min, max, alpha }
    }

    /// Draws a sample in `[min, max]`.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse CDF of the bounded Pareto.
        let u = rng.f64();
        let la = self.min.powf(self.alpha);
        let ha = self.max.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.min, self.max)
    }

    /// Analytic mean of the distribution (used to size offered load).
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.min, self.max, self.alpha);
        if (a - 1.0).abs() < 1e-9 {
            // alpha == 1 special case.
            let c = h * l / (h - l);
            c * (h / l).ln()
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a)))
                * (a / (a - 1.0))
                * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
        }
    }
}

/// Zipf distribution over `{0, .., n-1}` with skew `s`.
///
/// Sampling uses a precomputed cumulative table with binary search; building
/// the table is O(n), sampling O(log n). The key-value store workload uses
/// n = 100,000 and s = 0.9 as in the paper.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one element");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let exp = Exponential::new(5.0);
        let mut rng = Rng::new(11);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn pareto_bounds_hold() {
        let p = BoundedPareto::new(1.0, 100.0, 1.2);
        let mut rng = Rng::new(12);
        for _ in 0..10_000 {
            let v = p.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v), "sample {v} out of bounds");
        }
    }

    #[test]
    fn pareto_empirical_mean_matches_analytic() {
        let p = BoundedPareto::new(2.0, 1000.0, 1.5);
        let mut rng = Rng::new(13);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| p.sample(&mut rng)).sum::<f64>() / n as f64;
        let want = p.mean();
        assert!(
            (mean - want).abs() / want < 0.05,
            "empirical {mean} vs analytic {want}"
        );
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(1000, 0.9);
        let mut rng = Rng::new(14);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[500]);
    }

    #[test]
    fn zipf_single_element() {
        let z = Zipf::new(1, 0.9);
        let mut rng = Rng::new(15);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn zipf_skew_ratio_approximates_power_law() {
        // P(rank 0) / P(rank 1) should be close to 2^s.
        let s = 0.9;
        let z = Zipf::new(100, s);
        let mut rng = Rng::new(16);
        let mut c = [0u32; 2];
        for _ in 0..500_000 {
            let r = z.sample(&mut rng);
            if r < 2 {
                c[r] += 1;
            }
        }
        let ratio = c[0] as f64 / c[1] as f64;
        let want = 2f64.powf(s);
        assert!(
            (ratio - want).abs() / want < 0.05,
            "ratio {ratio} vs {want}"
        );
    }
}
